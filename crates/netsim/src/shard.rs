//! Sharded execution: conservative-lookahead parallel simulation.
//!
//! The fabric is partitioned into **shards** — disjoint sets of nodes, one
//! worker thread each. Every shard runs a full [`Simulator`] restricted to
//! its own nodes: events for foreign nodes are intercepted at the single
//! scheduling point and forwarded through bounded inter-shard mailboxes as
//! timestamped [`RemoteEvent`]s.
//!
//! ## Synchronization model
//!
//! The protocol is classic conservative (null-message-free) lookahead. Each
//! shard publishes a monotone **clock** — a promise that every event it will
//! ever send cross-shard from now on carries a timestamp `>= clock +
//! lookahead`, where the lookahead `L` is the minimum propagation delay over
//! all cross-shard links (packets cannot cross a link faster than the link's
//! delay). A worker iteration is:
//!
//! 1. snapshot every peer's published clock (`Acquire`),
//! 2. compute `bound = min(min_peer_clock + L, end + 1)`,
//! 3. drain the inbound mailboxes into the local event queue,
//! 4. process every local event with `time < bound`,
//! 5. flush outbound mailboxes, **then** publish `clock = bound` (`Release`).
//!
//! The snapshot-before-drain and flush-before-publish orderings are
//! load-bearing: together they guarantee that when a shard reads peer clock
//! `C`, every message that peer sent with a timestamp below `C + L` is
//! already visible in the mailbox, so processing strictly below `bound` can
//! never violate causality. Published clocks double as the termination
//! signal: a shard exits its run loop once its bound reaches `end + 1`.
//!
//! ## Determinism contract
//!
//! Runs are reproducible **across shard counts**: the merged recorded output
//! of `--shards 1/2/4/8` is byte-identical. Three mechanisms deliver this:
//!
//! * **Partition-invariant event keys.** In sharded mode every event is
//!   inserted with a canonical 64-bit key derived from its content (node,
//!   port, class, …) instead of an arrival-order sequence number, so
//!   simultaneous events pop in the same relative order no matter which
//!   shard's queue they sit in (see [`event_key`]'s encoding notes).
//! * **Per-node RNG streams.** ECN marking draws, host driver randomness and
//!   probabilistic fault draws come from per-node `SmallRng`s seeded from
//!   `(seed, node)`, so a node's stream does not depend on which other nodes
//!   share its thread.
//! * **Owner gating.** Faults replicate into every shard (so routing tables
//!   and link state stay globally consistent) but traces, fault logs and
//!   telemetry are emitted only by the shard that owns the node involved;
//!   the per-shard streams are disjoint and merge deterministically.
//!
//! Shard boundaries follow the racks: each host-facing switch forms a group
//! with its attached hosts (so host↔ToR links never cross shards), groups
//! are dealt to shards in contiguous runs, and fabric-only switches (aggs,
//! spines, cores) are distributed round-robin.

use crate::event::Event;
use crate::ids::NodeId;
use crate::sim::Simulator;
use crate::time::SimTime;
use crate::topology::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Event classes occupying the top two bits of a canonical event key.
/// Faults sort before packet events at equal timestamps (they reconfigure
/// the world the packets then see); control and telemetry ticks sort after.
const CLASS_FAULT: u64 = 0;
const CLASS_NODE: u64 = 1;
const CLASS_TICK: u64 = 2;
const CLASS_SAMPLE: u64 = 3;

/// Within-node event ranks (bits 41..39 of a class-1 key).
pub(crate) const RANK_ARRIVE: u64 = 0;
pub(crate) const RANK_TXDONE: u64 = 1;
pub(crate) const RANK_PFC: u64 = 2;
pub(crate) const RANK_TIMER: u64 = 3;

/// Mask for the per-event auxiliary discriminant (bits 38..0).
pub(crate) const AUX_MASK: u64 = (1 << 39) - 1;

/// Canonical key of a node-addressed event: class 1, then node id (20 bits),
/// then rank, then an aux discriminant. Keys are unique among simultaneous
/// events — link serialization separates same-port arrivals, a port has one
/// in-flight packet, PFC pause/resume alternates per (port, prio) under the
/// Xoff/Xon hysteresis, and host timers carry a per-host sequence number —
/// so `(time, key)` is a total order independent of the partition.
#[inline]
pub(crate) fn node_event_key(node: NodeId, rank: u64, aux: u64) -> u64 {
    debug_assert!(node.0 < (1 << 20), "node id exceeds key width");
    (CLASS_NODE << 62) | ((node.0 as u64) << 42) | (rank << 39) | (aux & AUX_MASK)
}

/// Canonical key of a scheduled fault: class 0, ordered by plan index.
#[inline]
pub(crate) fn fault_event_key(index: u64) -> u64 {
    (CLASS_FAULT << 62) | (index & ((1 << 62) - 1))
}

/// Canonical key of the (shard-local) control tick.
#[inline]
pub(crate) fn control_tick_key() -> u64 {
    CLASS_TICK << 62
}

/// Canonical key of the (shard-local) telemetry sampling tick.
#[inline]
pub(crate) fn telemetry_sample_key() -> u64 {
    CLASS_SAMPLE << 62
}

/// Initial capacity for the cross-shard staging buffers (per-destination
/// outboxes, mailboxes, and the flush scratch vector). Scaled with fabric
/// size: a steady-state congestion burst on a large topology can stage
/// hundreds of remote events in one slice, and letting those vectors double
/// mid-run would break the zero-alloc steady-state property the perf
/// harness asserts.
#[inline]
pub(crate) fn remote_buf_capacity(n_nodes: usize) -> usize {
    1024usize.max(n_nodes.next_power_of_two())
}

/// SplitMix64 finalizer — decorrelates per-node RNG seeds.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An event in flight between shards: its activation time, canonical key,
/// and payload. Plain data — this is the only thing that crosses threads.
#[derive(Clone, Debug)]
pub struct RemoteEvent {
    /// Activation time at the destination.
    pub at: SimTime,
    /// Canonical partition-invariant key (see [`node_event_key`]).
    pub key: u64,
    /// The event payload (only `Arrive` and `PfcUpdate` cross shards).
    pub event: Event,
}

/// A partition of the topology into `n_shards` node sets plus the derived
/// conservative lookahead.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of shards (worker threads).
    pub n_shards: u32,
    /// Owning shard of every node, indexed by `NodeId::idx()`.
    pub owner_of: Vec<u32>,
    /// Minimum propagation delay over cross-shard links — the lookahead `L`.
    /// [`SimTime::MAX`] when no link crosses shards (e.g. one shard).
    pub lookahead: SimTime,
}

impl ShardPlan {
    /// Partition `topo` into `n_shards` shards along rack boundaries.
    ///
    /// Every switch with at least one host-facing port anchors a group
    /// containing it and its attached hosts; groups are assigned to shards
    /// in contiguous runs (pods stay together), and fabric-only switches
    /// are dealt round-robin. Host↔ToR links therefore never cross shards;
    /// only switch↔switch fabric links do, and those carry the fabric
    /// propagation delay that becomes the lookahead.
    pub fn build(topo: &Topology, n_shards: u32) -> ShardPlan {
        assert!(n_shards >= 1, "need at least one shard");
        let mut owner_of = vec![u32::MAX; topo.nodes.len()];
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut fabric: Vec<NodeId> = Vec::new();
        for &sw in topo.switches() {
            let mut group = vec![sw];
            for p in &topo.node(sw).ports {
                if topo.is_host(p.peer_node) {
                    group.push(p.peer_node);
                }
            }
            if group.len() > 1 {
                groups.push(group);
            } else {
                fabric.push(sw);
            }
        }
        let g = groups.len().max(1);
        for (gi, group) in groups.iter().enumerate() {
            let shard = (gi * n_shards as usize / g) as u32;
            for &n in group {
                owner_of[n.idx()] = shard;
            }
        }
        for (fi, &sw) in fabric.iter().enumerate() {
            owner_of[sw.idx()] = (fi % n_shards as usize) as u32;
        }
        // Anything unreached (isolated hosts) defaults to shard 0.
        for o in owner_of.iter_mut() {
            if *o == u32::MAX {
                *o = 0;
            }
        }
        let mut la = u64::MAX;
        for (ni, n) in topo.nodes.iter().enumerate() {
            for p in &n.ports {
                if owner_of[ni] != owner_of[p.peer_node.idx()] {
                    la = la.min(p.delay.as_ps());
                }
            }
        }
        assert!(
            la > 0,
            "a zero-delay link crosses shards: conservative lookahead would be zero"
        );
        ShardPlan {
            n_shards,
            owner_of,
            lookahead: SimTime::from_ps(la),
        }
    }

    /// The shard that owns `node`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> u32 {
        self.owner_of[node.idx()]
    }

    /// Number of nodes owned by `shard`.
    pub fn nodes_of(&self, shard: u32) -> usize {
        self.owner_of.iter().filter(|&&o| o == shard).count()
    }
}

/// Per-shard execution counters reported by [`run_sharded`].
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Events processed by this shard's event loop.
    pub events_processed: u64,
    /// Iterations of the synchronization loop that made no progress
    /// (no events processed, no messages received, bound unchanged) —
    /// the lookahead stall counter.
    pub stalls: u64,
    /// Cross-shard events this shard sent.
    pub remote_sent: u64,
    /// Cross-shard events this shard received.
    pub remote_received: u64,
    /// Wall-clock seconds this shard's worker spent in its run loop.
    pub wall_s: f64,
    /// Events processed as of each phase boundary ([`run_sharded_phased`]):
    /// `phase_events[i]` is the cumulative count when phase `i` ended. One
    /// entry per phase; a plain [`run_sharded`] call has exactly one.
    pub phase_events: Vec<u64>,
}

/// Run one sharded simulation to `end` (inclusive, like
/// [`Simulator::run_until`]).
///
/// `build` is called on each worker thread with the shard index and must
/// return a simulator created with [`Simulator::new_sharded`] for the same
/// plan and shard (asserted), fully equipped with drivers, controllers and
/// samplers for its **owned** nodes, plus any shard-local state `S` the
/// caller wants back (per-shard recorders, FCT collectors, ...). `finish`
/// runs on the same worker after the horizon is reached and turns
/// `(Simulator, S)` into a `Send` result; the simulator and `S` themselves
/// never cross threads (they may hold `Rc`s).
///
/// Results are returned in shard order.
pub fn run_sharded<S, R, B, F>(
    plan: &ShardPlan,
    end: SimTime,
    build: B,
    finish: F,
) -> Vec<(ShardStats, R)>
where
    B: Fn(u32) -> (Simulator, S) + Sync,
    F: Fn(u32, Simulator, S) -> R + Sync,
    R: Send,
{
    run_sharded_phased(plan, &[end], build, |_| {}, finish)
}

/// [`run_sharded`] with barrier-separated phases: after all shards reach
/// `phase_ends[i]`, every worker parks on a barrier and `between(i)` runs on
/// the calling thread before the next phase starts. `acc-bench perf` uses
/// this to read the global allocation counter at the warmup/steady boundary
/// while no shard is mid-flight.
pub fn run_sharded_phased<S, R, B, P, F>(
    plan: &ShardPlan,
    phase_ends: &[SimTime],
    build: B,
    mut between: P,
    finish: F,
) -> Vec<(ShardStats, R)>
where
    B: Fn(u32) -> (Simulator, S) + Sync,
    P: FnMut(usize),
    F: Fn(u32, Simulator, S) -> R + Sync,
    R: Send,
{
    assert!(!phase_ends.is_empty(), "need at least one phase");
    assert!(
        phase_ends.windows(2).all(|w| w[0] <= w[1]),
        "phase ends must be non-decreasing"
    );
    let n = plan.n_shards as usize;
    let la_ps = plan.lookahead.as_ps();
    // Published clocks: clock[s] is shard s's promise that all its future
    // cross-shard sends have timestamps >= clock[s] + lookahead.
    let clocks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    // Mailboxes: inbox[dst][src] holds events from src awaiting dst.
    let remote_cap = remote_buf_capacity(plan.owner_of.len());
    let inboxes: Vec<Vec<Mutex<Vec<RemoteEvent>>>> = (0..n)
        .map(|_| {
            (0..n)
                .map(|_| Mutex::new(Vec::with_capacity(remote_cap)))
                .collect()
        })
        .collect();
    // Workers + the coordinating thread meet here between phases.
    let barrier = Barrier::new(n + 1);
    let results: Vec<Mutex<Option<(ShardStats, R)>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..n {
            let clocks = &clocks;
            let inboxes = &inboxes;
            let barrier = &barrier;
            let results = &results;
            let build = &build;
            let finish = &finish;
            scope.spawn(move || {
                let t0 = std::time::Instant::now();
                let (mut sim, state) = build(me as u32);
                sim.assert_shard(plan.n_shards, me as u32);
                let mut stats = ShardStats {
                    shard: me as u32,
                    ..ShardStats::default()
                };
                // Outbox flushes stage through this scratch vector so the
                // mailbox lock is held only for the append.
                let mut scratch: Vec<RemoteEvent> = Vec::with_capacity(remote_cap);
                let mut published: u64 = 0;
                for (pi, &end) in phase_ends.iter().enumerate() {
                    let bound_max = end.as_ps() + 1;
                    loop {
                        // (1) Snapshot peer clocks *before* draining: any
                        // message flushed before a peer published clock C is
                        // then guaranteed visible in the drain below.
                        let mut min_peer = u64::MAX;
                        for (s, c) in clocks.iter().enumerate() {
                            if s != me {
                                min_peer = min_peer.min(c.load(Ordering::Acquire));
                            }
                        }
                        // (2) Conservative bound: nothing below it can still
                        // arrive. Monotone so a lagging snapshot never
                        // retracts a published promise.
                        let bound = min_peer.saturating_add(la_ps).min(bound_max).max(published);
                        // (3) Drain inbound mailboxes.
                        let mut received = 0u64;
                        for (s, boxes) in inboxes[me].iter().enumerate() {
                            if s == me {
                                continue;
                            }
                            let mut inb = boxes.lock().unwrap();
                            received += inb.len() as u64;
                            for ev in inb.drain(..) {
                                sim.core_mut().inject_remote(ev);
                            }
                        }
                        stats.remote_received += received;
                        // (4) Process everything strictly below the bound.
                        let processed = sim.run_events_before(SimTime::from_ps(bound));
                        // (5) Flush outboxes, then publish the new clock.
                        for (s, boxes) in inboxes.iter().enumerate() {
                            if s == me {
                                continue;
                            }
                            sim.core_mut().drain_outbox_into(s as u32, &mut scratch);
                            if !scratch.is_empty() {
                                stats.remote_sent += scratch.len() as u64;
                                boxes[me].lock().unwrap().append(&mut scratch);
                            }
                        }
                        if bound > published {
                            clocks[me].store(bound, Ordering::Release);
                            published = bound;
                        } else if processed == 0 && received == 0 {
                            stats.stalls += 1;
                            std::thread::yield_now();
                        }
                        if published >= bound_max {
                            break;
                        }
                    }
                    sim.advance_now_to(end);
                    stats.phase_events.push(sim.core().events_processed);
                    // Phase done: wait for every shard, let the coordinator
                    // run `between`, then resume together.
                    barrier.wait();
                    barrier.wait();
                    let _ = pi;
                }
                stats.events_processed = sim.core().events_processed;
                let (sent, recv) = sim.core().shard_comm_counters();
                // Interception counts sends at the scheduling point; the
                // mailbox count above tallies flushes. They agree unless the
                // run ended with unflushed events past the horizon.
                stats.remote_sent = sent;
                stats.remote_received = recv;
                stats.wall_s = t0.elapsed().as_secs_f64();
                let r = finish(me as u32, sim, state);
                *results[me].lock().unwrap() = Some((stats, r));
            });
        }
        for pi in 0..phase_ends.len() {
            barrier.wait();
            between(pi);
            barrier.wait();
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("shard worker panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::driver::{HostCtx, NicDriver};
    use crate::fault::{FaultEvent, FaultKind, FaultPlan};
    use crate::ids::{FlowId, PortId, PRIO_RDMA};
    use crate::packet::{Ecn, Packet};
    use crate::topology::TopologySpec;
    use crate::trace::{TraceFilter, Tracer};
    use rand::Rng;
    use std::any::Any;

    fn assert_send<T: Send>() {}

    #[test]
    fn remote_events_cross_threads() {
        assert_send::<RemoteEvent>();
        assert_send::<ShardStats>();
    }

    fn leaf_spine() -> TopologySpec {
        TopologySpec::LeafSpine {
            n_leaf: 4,
            n_spine: 2,
            hosts_per_leaf: 4,
            host_bps: 25_000_000_000,
            fabric_bps: 100_000_000_000,
            host_delay: SimTime::from_ns(500),
            fabric_delay: SimTime::from_ns(500),
        }
    }

    #[test]
    fn plan_keeps_racks_whole_and_derives_lookahead() {
        let topo = leaf_spine().build();
        let plan = ShardPlan::build(&topo, 4);
        // Hosts share their ToR's shard.
        for &h in topo.hosts() {
            let tor = topo.port(h, PortId(0)).peer_node;
            assert_eq!(plan.owner(h), plan.owner(tor));
        }
        // Four leaf groups over four shards: everyone owns a rack.
        for s in 0..4 {
            assert!(plan.nodes_of(s) >= 4, "shard {s} owns too little");
        }
        // Only fabric links cross, so the lookahead is the fabric delay.
        assert_eq!(plan.lookahead, SimTime::from_ns(500));
        // One shard: nothing crosses.
        let p1 = ShardPlan::build(&topo, 1);
        assert_eq!(p1.lookahead, SimTime::MAX);
        assert!(p1.owner_of.iter().all(|&o| o == 0));
    }

    /// Sends `count` packets to `dst`, spaced by a per-host random jitter
    /// (exercises the per-node RNG streams), then goes quiet.
    struct JitterSender {
        dst: NodeId,
        count: u32,
        sent: u32,
        flow: FlowId,
    }

    impl NicDriver for JitterSender {
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut HostCtx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
            if self.sent >= self.count {
                return;
            }
            self.sent += 1;
            let pkt = Packet::data(
                self.flow,
                ctx.host(),
                self.dst,
                PRIO_RDMA,
                (self.sent as u64 - 1) * 1000,
                1000,
                self.sent == self.count,
                Ecn::Ect,
            );
            ctx.send(pkt);
            let jitter = ctx.rng().gen_range(0..5_000u64);
            ctx.set_timer_after(SimTime::from_ns(1_000 + jitter), 0);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self.as_any_mut_impl()
        }
    }
    impl JitterSender {
        fn as_any_mut_impl(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Canonical sort key for merged trace comparison.
    fn trace_key(e: &crate::trace::TraceEvent) -> (u64, u32, u16, u8, u64, u8) {
        (
            e.at.as_ps(),
            e.node.0,
            e.port.0,
            e.prio,
            e.flow.0,
            e.kind as u8,
        )
    }

    /// Run the cross-rack traffic scenario on `n_shards` shards and return
    /// (merged sorted traces, per-queue telemetry of every switch queue,
    /// global drop/pfc counters).
    fn run_scenario(n_shards: u32) -> (Vec<String>, Vec<String>, (u64, u64, u64)) {
        let topo = leaf_spine().build();
        let plan = ShardPlan::build(&topo, n_shards);
        let end = SimTime::from_ms(2);
        let hosts = topo.hosts().to_vec();
        let nh = hosts.len();
        let plan_ref = &plan;
        let topo_ref = &topo;
        let hosts_ref = &hosts;
        let results = run_sharded(
            plan_ref,
            end,
            |shard| {
                let mut cfg = SimConfig::default();
                cfg.seed = 7;
                let mut sim = Simulator::new_sharded(topo_ref.clone(), cfg, plan_ref, shard);
                sim.set_tracer(Tracer::new(TraceFilter::default(), 1 << 20));
                // A fault plan exercises replicated faults + owner-gated logs.
                let leaf0 = topo_ref.switches()[0];
                let fp = FaultPlan {
                    seed: 3,
                    events: vec![
                        FaultEvent {
                            at: SimTime::from_us(400),
                            kind: FaultKind::LinkDown {
                                node: leaf0,
                                port: PortId(4),
                            },
                        },
                        FaultEvent {
                            at: SimTime::from_us(900),
                            kind: FaultKind::LinkUp {
                                node: leaf0,
                                port: PortId(4),
                            },
                        },
                    ],
                };
                sim.install_fault_plan(&fp).unwrap();
                // Every host blasts a fixed cross-rack peer; drivers only on
                // owned hosts.
                for (i, &h) in hosts_ref.iter().enumerate() {
                    if plan_ref.owner(h) != shard {
                        continue;
                    }
                    let dst = hosts_ref[(i + nh / 2) % nh];
                    sim.set_driver(
                        h,
                        Box::new(JitterSender {
                            dst,
                            count: 60,
                            sent: 0,
                            flow: FlowId((h.0 as u64) << 32),
                        }),
                    );
                    sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
                }
                (sim, ())
            },
            |shard, mut sim, ()| {
                let traces = sim.tracer_mut().map(|t| t.take()).unwrap_or_default();
                let mut telem = Vec::new();
                let switches = sim.core().topo.switches().to_vec();
                for sw in switches {
                    if plan_ref.owner(sw) != shard {
                        continue;
                    }
                    let np = sim.core().topo.node(sw).ports.len();
                    for p in 0..np {
                        for prio in 0..sim.core().cfg.port.num_prios {
                            let t =
                                sim.core_mut()
                                    .synced_queue_telem(sw, PortId(p as u16), prio as u8);
                            telem.push(format!(
                                "{} {} {} {} {} {} {}",
                                sw.0, p, prio, t.tx_pkts, t.tx_bytes, t.tx_marked_pkts, t.drops
                            ));
                        }
                    }
                }
                let c = sim.core();
                (
                    traces,
                    telem,
                    c.total_drops,
                    c.total_pfc_pauses,
                    c.faults_executed,
                )
            },
        );
        let mut traces = Vec::new();
        let mut telem = Vec::new();
        let (mut drops, mut pauses, mut faults) = (0, 0, 0);
        for (_stats, (tr, te, d, p, f)) in results {
            traces.extend(tr);
            telem.extend(te);
            drops += d;
            pauses += p;
            faults += f;
        }
        traces.sort_by_key(trace_key);
        let traces = traces
            .iter()
            .map(|e| {
                format!(
                    "{} {:?} {} {} {} {} {}",
                    e.at.as_ps(),
                    e.kind,
                    e.node.0,
                    e.port.0,
                    e.prio,
                    e.flow.0,
                    e.qlen_bytes
                )
            })
            .collect::<Vec<_>>();
        telem.sort();
        (traces, telem, (drops, pauses, faults))
    }

    #[test]
    fn shard_counts_agree_bit_for_bit() {
        let (t1, q1, c1) = run_scenario(1);
        assert!(!t1.is_empty(), "scenario produced no traces");
        assert!(
            t1.iter().any(|l| l.contains("LinkDown")),
            "fault plan did not fire"
        );
        for n in [2u32, 4] {
            let (tn, qn, cn) = run_scenario(n);
            assert_eq!(c1, cn, "global counters differ at {n} shards");
            assert_eq!(q1, qn, "queue telemetry differs at {n} shards");
            assert_eq!(t1.len(), tn.len(), "trace count differs at {n} shards");
            for (a, b) in t1.iter().zip(tn.iter()) {
                assert_eq!(a, b, "trace record differs at {n} shards");
            }
        }
    }

    #[test]
    fn sharded_run_reports_comm_stats() {
        let topo = leaf_spine().build();
        let plan = ShardPlan::build(&topo, 2);
        let hosts = topo.hosts().to_vec();
        let nh = hosts.len();
        let plan_ref = &plan;
        let topo_ref = &topo;
        let hosts_ref = &hosts;
        let results = run_sharded(
            plan_ref,
            SimTime::from_us(200),
            |shard| {
                let mut cfg = SimConfig::default();
                cfg.seed = 11;
                let mut sim = Simulator::new_sharded(topo_ref.clone(), cfg, plan_ref, shard);
                for (i, &h) in hosts_ref.iter().enumerate() {
                    if plan_ref.owner(h) != shard {
                        continue;
                    }
                    let dst = hosts_ref[(i + nh / 2) % nh];
                    sim.set_driver(
                        h,
                        Box::new(JitterSender {
                            dst,
                            count: 10,
                            sent: 0,
                            flow: FlowId((h.0 as u64) << 32),
                        }),
                    );
                    sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
                }
                (sim, ())
            },
            |_, sim, ()| sim.core().events_processed,
        );
        let sent: u64 = results.iter().map(|(s, _)| s.remote_sent).sum();
        let recv: u64 = results.iter().map(|(s, _)| s.remote_received).sum();
        assert!(sent > 0, "cross-rack traffic must cross shards");
        assert_eq!(sent, recv, "every sent remote event must be received");
        for (s, ev) in &results {
            assert!(*ev > 0, "shard {} processed nothing", s.shard);
        }
    }
}
