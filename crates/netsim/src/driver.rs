//! The host-side extension point: NIC drivers.
//!
//! A [`NicDriver`] implements everything above the wire at an end host —
//! congestion control, reliability, message framing. The engine calls it when
//! packets addressed to the host arrive and when timers it set fire; the
//! driver reacts by handing packets to the NIC egress queues and setting more
//! timers through the [`HostCtx`] it is given.
//!
//! The `transport` crate provides DCQCN/DCTCP/TCP drivers; tests often use
//! tiny ad-hoc drivers.

use crate::ids::{NodeId, Prio};
use crate::packet::Packet;
use crate::sim::SimCore;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use std::any::Any;

/// Host-side protocol logic plugged into the simulator.
pub trait NicDriver: 'static {
    /// A packet addressed to this host arrived.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut HostCtx<'_>);

    /// A timer previously set via [`HostCtx::set_timer_at`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>);

    /// The NIC finished serializing a packet — egress room may be available.
    ///
    /// Drivers that defer sends while the NIC backlog is full resume them
    /// here; this is the doorbell/completion signal real NICs arbitrate
    /// their send queues on. The default does nothing.
    fn on_tx_ready(&mut self, _ctx: &mut HostCtx<'_>) {}

    /// Downcasting support so harnesses can reach driver-specific state.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The capabilities a driver has while handling an event.
///
/// Borrows the simulator core; all operations are applied immediately and
/// deterministically.
pub struct HostCtx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) host: NodeId,
}

impl HostCtx<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The host this context belongs to.
    #[inline]
    pub fn host(&self) -> NodeId {
        self.host
    }

    /// Hand a packet to the NIC. It joins the egress queue of its traffic
    /// class and is serialized when the DWRR scheduler picks it (and the
    /// class is not PFC-paused).
    pub fn send(&mut self, pkt: Packet) {
        debug_assert_eq!(pkt.src, self.host, "packet src must be the sending host");
        self.core.host_enqueue(self.host, pkt);
    }

    /// Wake this driver at absolute time `at` with `token`.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        let host = self.host;
        self.core.schedule_host_timer(at, host, token);
    }

    /// Wake this driver `delay` from now with `token`.
    pub fn set_timer_after(&mut self, delay: SimTime, token: u64) {
        let at = self.core.now + delay;
        self.set_timer_at(at, token);
    }

    /// Bytes currently waiting in this host's egress queue for class `prio`
    /// (drivers use this to keep NIC backlog bounded while pacing).
    pub fn egress_backlog_bytes(&self, prio: Prio) -> u64 {
        self.core.host_backlog(self.host, prio)
    }

    /// The NIC's line rate in bits/s.
    pub fn line_rate_bps(&self) -> u64 {
        self.core.topo.host_rate_bps(self.host)
    }

    /// Maximum payload per data packet configured for this simulation.
    pub fn mtu_payload(&self) -> u32 {
        self.core.cfg.mtu_payload
    }

    /// The deterministic RNG this driver draws from: the host's own stream
    /// in sharded runs (so draws are independent of thread placement), the
    /// simulation-wide shared RNG otherwise.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.core.node_rng(self.host)
    }

    /// True when this shard owns `node` (always true unsharded). Transport
    /// stacks use this to tell a cross-shard flow (whose sender-side record
    /// lives in another shard's collector) from a genuinely unknown one.
    pub fn owns_node(&self, node: NodeId) -> bool {
        self.core.owns_node(node)
    }
}
