//! Small identifier newtypes used throughout the simulator.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifies a node (host or switch) in the topology.
///
/// Node ids are dense indices assigned by the topology builder; hosts come
/// first, switches after, but code should rely on [`crate::topology::Topology`]
/// queries rather than on that layout.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize, for indexing parallel vectors.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a port within a node.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct PortId(pub u16);

impl PortId {
    /// The id as a usize, for indexing parallel vectors.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a flow (one message/transfer) end to end.
///
/// Flow ids are assigned by the transport layer and are globally unique for
/// one simulation run. ECMP hashes the flow id, so a flow sticks to one path.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A traffic class / priority index (0-based).
///
/// The default port configuration uses:
/// * `0` — best-effort (TCP), drop-tail;
/// * `1` — lossless RDMA class, protected by PFC, subject to ECN marking;
/// * `2` — control class (ACKs/CNPs), strict priority.
pub type Prio = u8;

/// Number of traffic classes the default configuration provisions.
pub const DEFAULT_NUM_PRIOS: usize = 3;

/// The best-effort (TCP) traffic class.
pub const PRIO_TCP: Prio = 0;
/// The lossless RDMA traffic class.
pub const PRIO_RDMA: Prio = 1;
/// The strict-priority control class used for ACKs and CNPs.
pub const PRIO_CTRL: Prio = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(PortId(7).to_string(), "p7");
        assert_eq!(FlowId(42).to_string(), "f42");
    }

    #[test]
    fn idx_round_trip() {
        assert_eq!(NodeId(9).idx(), 9);
        assert_eq!(PortId(9).idx(), 9);
    }
}
