//! # netsim — a deterministic packet-level datacenter-network simulator
//!
//! This crate is the substrate on which the ACC reproduction runs. It models,
//! at packet granularity, the parts of a high-speed datacenter fabric that an
//! ECN-tuning scheme interacts with:
//!
//! * **Links** — full-duplex point-to-point links with a serialization rate
//!   and a propagation delay.
//! * **Switches** — shared-buffer output-queued switches with per-port,
//!   per-traffic-class egress queues, RED/ECN marking with configurable
//!   `{Kmin, Kmax, Pmax}`, deficit-weighted-round-robin scheduling, and
//!   Priority Flow Control (PFC) with a dynamic Xoff threshold
//!   (`Xoff = alpha * free_buffer`, the scheme used by commodity chips and the
//!   ACC paper's testbed).
//! * **Hosts** — NIC models with per-priority egress queues that honour PFC;
//!   the transport behaviour (DCQCN, DCTCP, TCP) is plugged in through the
//!   [`NicDriver`] trait implemented by the `transport` crate.
//! * **Control plane** — every `delta_t` the engine invokes a
//!   [`QueueController`] on each switch with a telemetry view (queue depth,
//!   tx bytes, ECN-marked tx bytes, current config) and lets it rewrite the
//!   ECN configuration. ACC's per-switch DDQN agent, the static SECN
//!   baselines and the centralized C-ACC variant all implement this trait.
//!
//! The simulator is single-threaded and fully deterministic: all randomness
//! flows from one seeded `rand::rngs::SmallRng`, and
//! simultaneous events are ordered by insertion sequence. Identical seeds
//! produce identical runs.
//!
//! ## Quick example
//!
//! ```
//! use netsim::prelude::*;
//!
//! // Two hosts connected by one switch, 25 Gbps links, 1 us of propagation.
//! let spec = TopologySpec::single_switch(2, 25_000_000_000, SimTime::from_us(1));
//! let topo = spec.build();
//! assert_eq!(topo.host_count(), 2);
//! ```
//!
//! See the `transport`, `acc-core` and `workloads` crates for the layers that
//! sit on top, and the repository examples for end-to-end scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod config;
pub mod control;
pub mod driver;
pub mod event;
pub mod fault;
pub mod flowsim;
pub mod ids;
pub mod packet;
pub mod profile;
pub mod queues;
pub mod routing;
pub mod shard;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod util;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::buffer::SharedBuffer;
    pub use crate::config::{PortConfig, SimConfig};
    pub use crate::control::{QueueController, QueueSnapshot, SwitchView};
    pub use crate::driver::{HostCtx, NicDriver};
    pub use crate::fault::{FaultEvent, FaultKind, FaultLogEntry, FaultPlan, FaultPlanError};
    pub use crate::flowsim::{Fidelity, FlowSim, FlowSimConfig, FlowSpec};
    pub use crate::ids::{FlowId, NodeId, PortId, Prio};
    pub use crate::packet::{Ecn, Packet, PacketKind};
    pub use crate::queues::EcnConfig;
    pub use crate::shard::{run_sharded, run_sharded_phased, RemoteEvent, ShardPlan, ShardStats};
    pub use crate::sim::Simulator;
    pub use crate::time::{tx_time, SimTime};
    pub use crate::topology::{NodeKind, Topology, TopologySpec};
    pub use crate::trace::{TraceEvent, TraceFilter, TraceKind, Tracer};
}

pub use prelude::*;

// Send/Sync audit for the parallel run-matrix executor in `acc-bench`: a
// `Simulator` itself is single-threaded (trait objects and `Rc` graphs live
// and die on the thread that built it), but everything a matrix cell
// captures to *build* one on a worker thread must cross threads. Keeping
// these as compile-time assertions means a refactor that sneaks an `Rc`
// into a spec/config type fails here, not in a distant bench build.
#[cfg(test)]
mod send_audit {
    use super::prelude::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn matrix_cell_inputs_cross_threads() {
        assert_send_sync::<TopologySpec>();
        assert_send_sync::<Topology>();
        assert_send_sync::<SimConfig>();
        assert_send_sync::<SimTime>();
        assert_send_sync::<FaultPlan>();
        assert_send_sync::<EcnConfig>();
        assert_send_sync::<NodeId>();
        assert_send_sync::<PortId>();
    }
}
