//! Simulated time.
//!
//! Time is kept in integer **picoseconds** so that serialization times of
//! small packets on 100 Gbps links (a 64-byte frame serializes in 5.12 ns)
//! are represented exactly. A `u64` of picoseconds covers ~213 days of
//! simulated time, far beyond any experiment in this repository.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in (or span of) simulated time, in picoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }
    /// Construct from fractional seconds (rounds to the nearest picosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * 1e12).round() as u64)
    }

    /// This time as picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// This time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `self - other`, clamped at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// Multiply a time span by an integer factor.
    #[inline]
    pub fn mul(self, k: u64) -> SimTime {
        SimTime(self.0 * k)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

/// Time needed to serialize `bytes` onto a link running at `rate_bps`.
///
/// Exact in picoseconds up to rounding of the final division.
///
/// ```
/// use netsim::time::{tx_time, SimTime};
/// // 1500 bytes at 100 Gbps = 120 ns.
/// assert_eq!(tx_time(1500, 100_000_000_000), SimTime::from_ns(120));
/// ```
#[inline]
pub fn tx_time(bytes: u64, rate_bps: u64) -> SimTime {
    debug_assert!(rate_bps > 0, "link rate must be positive");
    let ps = (bytes as u128 * 8 * 1_000_000_000_000u128) / rate_bps as u128;
    SimTime(ps as u64)
}

/// Convert a byte count and a time span into an achieved rate in bits/s.
///
/// Returns 0 for an empty interval.
#[inline]
pub fn rate_bps(bytes: u64, span: SimTime) -> f64 {
    if span.0 == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / span.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_ms(1_500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.mul(3), SimTime::from_us(30));
    }

    #[test]
    fn tx_time_exact_values() {
        // 64B @ 100G = 5.12 ns = 5120 ps.
        assert_eq!(tx_time(64, 100_000_000_000), SimTime::from_ps(5_120));
        // 1048B @ 25G = 335.36 ns.
        assert_eq!(tx_time(1048, 25_000_000_000), SimTime::from_ps(335_360));
        assert_eq!(tx_time(0, 25_000_000_000), SimTime::ZERO);
    }

    #[test]
    fn rate_round_trip() {
        let t = tx_time(125_000, 10_000_000_000); // 1 Mb at 10G = 100 us
        assert_eq!(t, SimTime::from_us(100));
        let r = rate_bps(125_000, t);
        assert!((r - 10_000_000_000.0).abs() / 1e10 < 1e-9);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000000s");
    }
}
