//! Deterministic fault injection: scripted link, switch and telemetry faults.
//!
//! A [`FaultPlan`] is a seeded, serializable schedule of [`FaultKind`]s that
//! [`crate::sim::Simulator::install_fault_plan`] turns into ordinary events
//! in the simulation's future-event list. Faults therefore execute at exact
//! simulated times, interleaved deterministically with packet events:
//! identical seeds and identical plans reproduce identical runs, byte for
//! byte, which is what makes failure testing regressable.
//!
//! Two RNG streams keep determinism composable: the packet path keeps using
//! the config-seeded engine RNG, while probabilistic faults (packet loss)
//! draw from a dedicated RNG seeded from [`FaultPlan::seed`]. A run with a
//! loss-free plan is bit-identical to the same run with no plan at all.
//!
//! What can be injected:
//!
//! * **Link flaps** — [`FaultKind::LinkDown`] / [`FaultKind::LinkUp`]:
//!   both directions fail, routes steer around the failure, packets already
//!   in flight toward the dead link are lost at arrival, and PFC pause state
//!   on both endpoints is cleared so a flap can never leave a port paused
//!   forever.
//! * **Rate degradation** — [`FaultKind::DegradeLink`]: the link serializes
//!   at a reduced rate (a flapping optic, a misnegotiated speed) until
//!   [`FaultKind::RestoreLinkRate`].
//! * **Packet loss** — [`FaultKind::PacketLoss`]: a fraction of packets
//!   arriving at one port is black-holed (1.0 = total blackhole, 0.0 =
//!   healthy again).
//! * **Switch reboot** — [`FaultKind::SwitchReboot`]: every egress queue is
//!   flushed (the packets are lost), the ECN configuration reverts to the
//!   configured static default, and PFC state is reset with resumes sent so
//!   peers un-stick.
//! * **Telemetry faults** — [`FaultKind::TelemetryFreeze`] /
//!   [`FaultKind::TelemetryBlank`]: the counters a controller reads through
//!   [`crate::control::SwitchView::snapshot`] freeze at their current values
//!   or read back as zero, while the data path keeps running. This is the
//!   "stale state vector" failure mode safe-mode guardrails must catch; the
//!   flight-recorder sampler keeps seeing ground truth so the divergence is
//!   observable.
//!
//! Every executed fault is appended to an in-core fault log
//! ([`crate::sim::SimCore::drain_fault_log`]) and mirrored into the trace
//! ring when a tracer is installed.

use crate::ids::{NodeId, PortId};
use crate::queues::QueueTelemetry;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a [`FaultPlan`] (or one of its [`FaultKind`]s) was rejected. Typed so
/// tooling that loads hand-edited plans can distinguish a bad parameter from
/// a structurally impossible schedule — and so the rejection happens at
/// deserialization time, not mid-run.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// `DegradeLink` with a zero line rate (a degraded link still serializes).
    ZeroDegradedRate {
        /// Link endpoint.
        node: NodeId,
        /// Port on that endpoint.
        port: PortId,
    },
    /// `PacketLoss` fraction is NaN/infinite.
    NonFiniteLossFraction {
        /// Receiving node.
        node: NodeId,
        /// Ingress port.
        port: PortId,
    },
    /// `PacketLoss` fraction outside `[0, 1]`.
    LossFractionOutOfRange {
        /// Receiving node.
        node: NodeId,
        /// Ingress port.
        port: PortId,
        /// The offending fraction.
        frac: f64,
    },
    /// Two `SwitchReboot`s of the same switch scheduled closer together than
    /// the reboot settle window — the second would flush a switch that is
    /// still settling from the first, which is never a meaningful schedule
    /// (it is almost always a duplicated line in a hand-edited plan).
    OverlappingReboots {
        /// The switch rebooted twice.
        node: NodeId,
        /// First scheduled reboot.
        first: SimTime,
        /// Conflicting second reboot.
        second: SimTime,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::ZeroDegradedRate { node, port } => {
                write!(f, "DegradeLink at {}:{} needs rate_bps > 0", node.0, port.0)
            }
            FaultPlanError::NonFiniteLossFraction { node, port } => {
                write!(f, "PacketLoss frac at {}:{} is not finite", node.0, port.0)
            }
            FaultPlanError::LossFractionOutOfRange { node, port, frac } => {
                write!(
                    f,
                    "PacketLoss frac {frac} at {}:{} outside [0, 1]",
                    node.0, port.0
                )
            }
            FaultPlanError::OverlappingReboots {
                node,
                first,
                second,
            } => {
                write!(
                    f,
                    "switch {} rebooted at {first} and again at {second}: reboot windows \
                     must be at least {} apart",
                    node.0, REBOOT_SETTLE
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Minimum spacing between two reboots of the same switch: a reboot flushes
/// queues and resets state, and the fabric needs at least this long before a
/// second reboot of the same box describes a distinct fault (rather than a
/// duplicated schedule entry).
pub const REBOOT_SETTLE: SimTime = SimTime::from_us(100);

/// One injectable fault.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail the link attached to (`node`, `port`) — both directions.
    LinkDown {
        /// One endpoint of the link.
        node: NodeId,
        /// Port on that endpoint.
        port: PortId,
    },
    /// Restore the link attached to (`node`, `port`).
    LinkUp {
        /// One endpoint of the link.
        node: NodeId,
        /// Port on that endpoint.
        port: PortId,
    },
    /// Degrade the serialization rate of the link attached to
    /// (`node`, `port`) — both directions — to `rate_bps`.
    DegradeLink {
        /// One endpoint of the link.
        node: NodeId,
        /// Port on that endpoint.
        port: PortId,
        /// Degraded line rate, bits/s (must be positive).
        rate_bps: u64,
    },
    /// Undo a [`FaultKind::DegradeLink`]: the link serializes at its
    /// topology-configured rate again.
    RestoreLinkRate {
        /// One endpoint of the link.
        node: NodeId,
        /// Port on that endpoint.
        port: PortId,
    },
    /// Black-hole a fraction of the packets arriving at (`node`, `port`).
    /// `frac = 1.0` drops everything; `frac = 0.0` restores health.
    PacketLoss {
        /// Receiving node.
        node: NodeId,
        /// Ingress port whose arrivals are lossy.
        port: PortId,
        /// Fraction of arrivals dropped, in `[0, 1]`.
        frac: f64,
    },
    /// Reboot a switch: flush all egress queues (packets lost), reset every
    /// queue's ECN config to the configured static default, clear PFC state
    /// (sending resumes upstream) and restore telemetry health.
    SwitchReboot {
        /// The switch to reboot.
        node: NodeId,
    },
    /// Freeze the telemetry counters controllers read from `node`: every
    /// subsequent [`crate::control::SwitchView::snapshot`] returns the
    /// values current at injection time, while the data path keeps moving.
    TelemetryFreeze {
        /// The node whose telemetry freezes.
        node: NodeId,
    },
    /// Blank the telemetry counters controllers read from `node`: snapshots
    /// return zeroed counters and an empty queue.
    TelemetryBlank {
        /// The node whose telemetry blanks.
        node: NodeId,
    },
    /// Restore healthy telemetry reads on `node`.
    TelemetryRestore {
        /// The node whose telemetry recovers.
        node: NodeId,
    },
}

impl FaultKind {
    /// Stable machine-readable name (used in the fault log and telemetry).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::DegradeLink { .. } => "link_degrade",
            FaultKind::RestoreLinkRate { .. } => "link_rate_restore",
            FaultKind::PacketLoss { .. } => "packet_loss",
            FaultKind::SwitchReboot { .. } => "switch_reboot",
            FaultKind::TelemetryFreeze { .. } => "telem_freeze",
            FaultKind::TelemetryBlank { .. } => "telem_blank",
            FaultKind::TelemetryRestore { .. } => "telem_restore",
        }
    }

    /// Parameter sanity check; `Err` says exactly what is wrong.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        match *self {
            FaultKind::DegradeLink {
                node,
                port,
                rate_bps: 0,
            } => Err(FaultPlanError::ZeroDegradedRate { node, port }),
            FaultKind::PacketLoss { node, port, frac } if !frac.is_finite() => {
                Err(FaultPlanError::NonFiniteLossFraction { node, port })
            }
            FaultKind::PacketLoss { node, port, frac } if !(0.0..=1.0).contains(&frac) => {
                Err(FaultPlanError::LossFractionOutOfRange { node, port, frac })
            }
            _ => Ok(()),
        }
    }
}

/// A fault with its injection time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault executes (absolute simulated time).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, serializable schedule of faults for one run.
///
/// Build one with the chainable helpers, or deserialize it from JSON (the
/// schema is documented in `EXPERIMENTS.md`), then hand it to
/// [`crate::sim::Simulator::install_fault_plan`].
///
/// Deserialization validates: a hand-edited plan with a non-finite loss
/// fraction, a zero degraded rate or overlapping per-switch reboots is
/// rejected while being parsed (with a [`FaultPlanError`] message), never
/// mid-run.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG (drives probabilistic packet loss).
    pub seed: u64,
    /// The scheduled faults. Order is irrelevant; the event queue sorts.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given fault-RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedule `kind` at `at` (chainable).
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Schedule `kind` at `at`.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Schedule a down/up flap of the link at (`node`, `port`).
    pub fn link_flap(
        mut self,
        node: NodeId,
        port: PortId,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Self {
        self.push(down_at, FaultKind::LinkDown { node, port });
        self.push(up_at, FaultKind::LinkUp { node, port });
        self
    }

    /// Freeze `node`'s telemetry over `[from, until)`.
    pub fn telemetry_freeze(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.push(from, FaultKind::TelemetryFreeze { node });
        self.push(until, FaultKind::TelemetryRestore { node });
        self
    }

    /// Blank `node`'s telemetry over `[from, until)`.
    pub fn telemetry_blank(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.push(from, FaultKind::TelemetryBlank { node });
        self.push(until, FaultKind::TelemetryRestore { node });
        self
    }

    /// Degrade the link at (`node`, `port`) to `rate_bps` over `[from, until)`.
    pub fn degrade_window(
        mut self,
        node: NodeId,
        port: PortId,
        rate_bps: u64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.push(
            from,
            FaultKind::DegradeLink {
                node,
                port,
                rate_bps,
            },
        );
        self.push(until, FaultKind::RestoreLinkRate { node, port });
        self
    }

    /// Drop `frac` of arrivals at (`node`, `port`) over `[from, until)`.
    pub fn loss_window(
        mut self,
        node: NodeId,
        port: PortId,
        frac: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.push(from, FaultKind::PacketLoss { node, port, frac });
        self.push(
            until,
            FaultKind::PacketLoss {
                node,
                port,
                frac: 0.0,
            },
        );
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate every scheduled fault, plus the cross-event invariants
    /// (per-switch reboot windows must not overlap within
    /// [`REBOOT_SETTLE`]).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for ev in &self.events {
            ev.kind.validate()?;
        }
        // Reboots of the same switch must be spaced apart: collect per-node
        // reboot times, sort, and reject any pair inside the settle window.
        let mut reboots: Vec<(NodeId, SimTime)> = self
            .events
            .iter()
            .filter_map(|ev| match ev.kind {
                FaultKind::SwitchReboot { node } => Some((node, ev.at)),
                _ => None,
            })
            .collect();
        reboots.sort_by_key(|&(n, t)| (n.0, t));
        for w in reboots.windows(2) {
            let ((n1, t1), (n2, t2)) = (w[0], w[1]);
            if n1 == n2 && t2 - t1 < REBOOT_SETTLE {
                return Err(FaultPlanError::OverlappingReboots {
                    node: n1,
                    first: t1,
                    second: t2,
                });
            }
        }
        Ok(())
    }
}

/// Wire shape of a [`FaultPlan`]; the real type validates on top of this.
#[derive(Deserialize)]
struct FaultPlanWire {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl serde::Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let w = FaultPlanWire::from_value(v)?;
        let plan = FaultPlan {
            seed: w.seed,
            events: w.events,
        };
        plan.validate()
            .map_err(|e| serde::Error::new(format!("invalid fault plan: {e}")))?;
        Ok(plan)
    }
}

/// One executed fault, as recorded in [`crate::sim::SimCore`]'s fault log.
///
/// The telemetry layer drains these into its event stream; `detail` carries
/// the fault's parameters. Both the entry and its detail are plain `Copy`
/// data — logging a fault on the hot path never touches the allocator; the
/// stable `key=value` text form is only rendered when a consumer formats
/// the detail (see [`FaultDetail`]'s `Display`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultLogEntry {
    /// Execution time.
    pub at: SimTime,
    /// Stable fault name (see [`FaultKind::name`]).
    pub kind: &'static str,
    /// Node the fault applied to.
    pub node: NodeId,
    /// Port the fault applied to (`PortId(u16::MAX)` for node-wide faults).
    pub port: PortId,
    /// Parameters (renders as e.g. `rate_bps=10000000000`; empty when none).
    pub detail: FaultDetail,
}

/// The parameters of an executed fault, as structured `Copy` data.
///
/// Replaces the per-record `format!`ed `String` the fault log used to
/// carry. The `Display` impl reproduces the old strings byte-for-byte
/// (`peer=<node>:<port>`, `rate_bps=<bps>`, `frac=<f64>`, `flushed=<n>`,
/// and empty for [`FaultDetail::None`]), so recorded JSONL is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum FaultDetail {
    /// No parameters (telemetry faults, rate restores).
    #[default]
    None,
    /// The peer endpoint of a link fault: `peer=<node>:<port>`.
    Peer {
        /// Peer node.
        node: NodeId,
        /// Peer port.
        port: PortId,
    },
    /// Degraded serialization rate: `rate_bps=<bps>`.
    RateBps(u64),
    /// Injected loss fraction: `frac=<frac>`.
    LossFrac(f64),
    /// Packets flushed by a switch reboot: `flushed=<n>`.
    Flushed(u64),
}

impl std::fmt::Display for FaultDetail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultDetail::None => Ok(()),
            FaultDetail::Peer { node, port } => write!(f, "peer={}:{}", node.0, port.0),
            FaultDetail::RateBps(rate) => write!(f, "rate_bps={rate}"),
            FaultDetail::LossFrac(frac) => write!(f, "frac={frac}"),
            FaultDetail::Flushed(n) => write!(f, "flushed={n}"),
        }
    }
}

/// How a node's telemetry reads are currently distorted (fault injection).
pub(crate) enum TelemFault {
    /// Snapshots return the values captured at freeze time, per queue:
    /// `(qlen_bytes, telem)` indexed by `port * num_prios + prio`.
    Frozen(Vec<(u64, QueueTelemetry)>),
    /// Snapshots return zeroed counters and an empty queue.
    Blank,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enum detail must render the exact strings the fault log carried
    /// when it `format!`ed per record — recorded JSONL depends on them.
    #[test]
    fn fault_detail_renders_legacy_strings() {
        assert_eq!(FaultDetail::None.to_string(), "");
        assert_eq!(
            FaultDetail::Peer {
                node: NodeId(28),
                port: PortId(0)
            }
            .to_string(),
            "peer=28:0"
        );
        assert_eq!(
            FaultDetail::RateBps(10_000_000_000).to_string(),
            "rate_bps=10000000000"
        );
        assert_eq!(FaultDetail::LossFrac(0.3).to_string(), "frac=0.3");
        assert_eq!(FaultDetail::LossFrac(1.0).to_string(), "frac=1");
        assert_eq!(FaultDetail::Flushed(17).to_string(), "flushed=17");
    }

    #[test]
    fn plan_builders_accumulate_events() {
        let plan = FaultPlan::new(7)
            .link_flap(
                NodeId(1),
                PortId(2),
                SimTime::from_us(10),
                SimTime::from_us(20),
            )
            .telemetry_freeze(NodeId(1), SimTime::from_us(5), SimTime::from_us(30))
            .loss_window(
                NodeId(3),
                PortId(0),
                0.25,
                SimTime::from_us(1),
                SimTime::from_us(2),
            )
            .degrade_window(
                NodeId(1),
                PortId(2),
                1_000_000_000,
                SimTime::from_us(40),
                SimTime::from_us(50),
            );
        assert_eq!(plan.len(), 8);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bad_rate = FaultPlan::new(0).at(
            SimTime::ZERO,
            FaultKind::DegradeLink {
                node: NodeId(0),
                port: PortId(0),
                rate_bps: 0,
            },
        );
        assert!(bad_rate.validate().is_err());
        let bad_frac = FaultPlan::new(0).at(
            SimTime::ZERO,
            FaultKind::PacketLoss {
                node: NodeId(0),
                port: PortId(0),
                frac: 1.5,
            },
        );
        assert!(bad_frac.validate().is_err());
    }

    #[test]
    fn typed_errors_name_the_offender() {
        let bad = FaultKind::PacketLoss {
            node: NodeId(3),
            port: PortId(1),
            frac: f64::NAN,
        };
        assert_eq!(
            bad.validate(),
            Err(FaultPlanError::NonFiniteLossFraction {
                node: NodeId(3),
                port: PortId(1)
            })
        );
        let oob = FaultKind::PacketLoss {
            node: NodeId(3),
            port: PortId(1),
            frac: 1.5,
        };
        assert!(matches!(
            oob.validate(),
            Err(FaultPlanError::LossFractionOutOfRange { frac, .. }) if frac == 1.5
        ));
    }

    #[test]
    fn overlapping_reboots_rejected() {
        let plan = FaultPlan::new(0)
            .at(
                SimTime::from_us(500),
                FaultKind::SwitchReboot { node: NodeId(4) },
            )
            .at(
                SimTime::from_us(550),
                FaultKind::SwitchReboot { node: NodeId(4) },
            );
        assert!(matches!(
            plan.validate(),
            Err(FaultPlanError::OverlappingReboots {
                node: NodeId(4),
                ..
            })
        ));
        // Same spacing on *different* switches is fine, as is a spaced pair.
        let ok = FaultPlan::new(0)
            .at(
                SimTime::from_us(500),
                FaultKind::SwitchReboot { node: NodeId(4) },
            )
            .at(
                SimTime::from_us(550),
                FaultKind::SwitchReboot { node: NodeId(5) },
            )
            .at(
                SimTime::from_us(700),
                FaultKind::SwitchReboot { node: NodeId(4) },
            );
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn deserialization_validates() {
        // A hand-edited plan with an out-of-range loss fraction fails at
        // parse time with a message naming the problem.
        let text = r#"{"seed":1,"events":[
            {"at":1000,"kind":{"PacketLoss":{"node":2,"port":0,"frac":2.5}}}
        ]}"#;
        let err = serde_json::from_str::<FaultPlan>(text).unwrap_err();
        assert!(
            err.to_string().contains("invalid fault plan"),
            "unexpected error: {err}"
        );
        // Overlapping reboots are structural, not per-event — also caught.
        let dup = serde_json::to_string(
            &FaultPlan::new(0)
                .at(
                    SimTime::from_us(1),
                    FaultKind::SwitchReboot { node: NodeId(1) },
                )
                .at(
                    SimTime::from_us(2),
                    FaultKind::SwitchReboot { node: NodeId(1) },
                ),
        )
        .unwrap();
        assert!(serde_json::from_str::<FaultPlan>(&dup).is_err());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(42)
            .at(
                SimTime::from_ms(1),
                FaultKind::SwitchReboot { node: NodeId(4) },
            )
            .telemetry_blank(NodeId(2), SimTime::from_ms(2), SimTime::from_ms(3));
        let text = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            FaultKind::SwitchReboot { node: NodeId(0) }.name(),
            "switch_reboot"
        );
        assert_eq!(
            FaultKind::TelemetryFreeze { node: NodeId(0) }.name(),
            "telem_freeze"
        );
    }
}
