//! The flow-level discrete-event engine: slab-allocated flow states,
//! per-link intrusive active lists, and epoch-invalidated completion timers
//! on the packet engine's timing wheel.
//!
//! Event cost is O(path length + affected flows) per flow arrival or
//! departure, independent of flow size — a 10 MB elephant costs the same
//! two events as a 1 KB mouse unless sharers force reschedules. Steady
//! state allocates nothing: the flow slab, free list, scratch buffers and
//! completion log are reserved up front from the scheduled arrival count,
//! and the wheel is pre-sized the same way.

use super::bottleneck::LinkModel;
use crate::event::{Event, EventQueue};
use crate::ids::{FlowId, NodeId, PortId, Prio};
use crate::queues::EcnConfig;
use crate::routing::RouteTable;
use crate::time::{tx_time, SimTime};
use crate::topology::Topology;

/// Sentinel for "no entry" in the intrusive per-link flow lists.
pub const NIL: u32 = u32::MAX;

/// Maximum hops (directed links) a path may traverse. The 3-tier Clos
/// presets need 6 (host→ToR→agg→core→agg→ToR→host).
pub const MAX_HOPS: usize = 8;

/// Token bit marking a wheel timer as a flow arrival (vs. a completion).
const ARRIVAL_BIT: u64 = 1 << 63;

/// Simulation fidelity selected on the `acc-bench` command line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fidelity {
    /// Full packet-level simulation (the existing engine).
    Packet,
    /// Flow-level rates with the analytic ECN/queue model feeding the
    /// controller — the mode the accuracy report validates.
    Hybrid,
    /// Pure flow-level: no ECN model, no controller; ideal fair-share FCTs.
    Flow,
}

impl Fidelity {
    /// Parse a `--fidelity` argument.
    pub fn parse(s: &str) -> Option<Fidelity> {
        match s {
            "packet" => Some(Fidelity::Packet),
            "hybrid" => Some(Fidelity::Hybrid),
            "flow" => Some(Fidelity::Flow),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Packet => "packet",
            Fidelity::Hybrid => "hybrid",
            Fidelity::Flow => "flow",
        }
    }
}

/// One flow to simulate: the flow-level analogue of a scheduled
/// `workloads` arrival.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub bytes: u64,
    /// Traffic class (recorded on the completion, not modeled).
    pub prio: Prio,
    /// Application-defined tag, carried through to [`FlowDone`].
    pub tag: u64,
    /// Arrival time.
    pub start: SimTime,
}

/// A completed flow, mirroring `transport::FlowRecord` so the bench layer
/// can register it into the same FCT collectors the packet engine feeds.
#[derive(Clone, Copy, Debug)]
pub struct FlowDone {
    /// Globally unique flow id (assignment order of [`FlowSim::schedule_flows`]).
    pub flow: FlowId,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Application bytes transferred.
    pub bytes: u64,
    /// Traffic class.
    pub prio: Prio,
    /// Application tag from the spec.
    pub tag: u64,
    /// Flow start time.
    pub start: SimTime,
    /// Time the last data byte reached the receiver.
    pub end: SimTime,
}

/// Engine configuration; [`Default`] matches the packet engine's
/// [`crate::config::SimConfig`] defaults.
#[derive(Clone, Debug)]
pub struct FlowSimConfig {
    /// Maximum payload bytes per data packet; segmentation must match the
    /// packet engine's for the fast path to be exact.
    pub mtu_payload: u32,
    /// Control-plane tick interval (telemetry windows / tuner cadence);
    /// `None` disables ticks entirely.
    pub control_interval: Option<SimTime>,
    /// ECN config installed on every switch-egress link at build time
    /// (ignored in [`Fidelity::Flow`] mode).
    pub switch_ecn: EcnConfig,
    /// Hybrid (analytic ECN feedback) or pure flow fidelity.
    /// [`Fidelity::Packet`] is rejected — that is the other engine.
    pub fidelity: Fidelity,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            mtu_payload: 1000,
            control_interval: Some(SimTime::from_us(50)),
            switch_ecn: EcnConfig::dcqcn_paper(),
            fidelity: Fidelity::Hybrid,
        }
    }
}

/// A tuner invoked on every control tick with the full directed-link table,
/// telemetry already advanced to `now`.
///
/// This is the flow-level counterpart of the packet engine's
/// [`crate::control::QueueController`]: implementations difference the
/// monotone [`LinkModel::telem`] counters between ticks, build the same
/// observations ACC's DDQN consumes, and write configs back through
/// [`LinkModel::ecn`]. Host-egress links have `ecn == None` and should be
/// skipped.
pub trait EcnTuner {
    /// Observe-and-act callback; runs every `control_interval`.
    fn on_tick(&mut self, now: SimTime, links: &mut [LinkModel]);
}

/// Counters describing one finished run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowSimStats {
    /// Wheel events popped (arrivals + completions + stale + ticks).
    pub events_processed: u64,
    /// Completion timers that popped with a stale epoch and were ignored.
    pub stale_events: u64,
    /// Flows priced entirely on the ideal-FCT fast path (never rescheduled).
    pub fast_path_flows: u64,
    /// Flows started.
    pub flows_started: u64,
    /// Flows that completed before the horizon.
    pub flows_completed: u64,
    /// Flows dropped because no route existed (failed links etc.).
    pub unrouted_flows: u64,
    /// High-water mark of concurrently active flows.
    pub peak_active_flows: u64,
    /// High-water mark of the event queue.
    pub peak_event_queue: usize,
}

/// Per-flow simulation state in the slab.
#[derive(Clone, Debug)]
struct FlowState {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    prio: Prio,
    tag: u64,
    start: SimTime,
    /// Time `remaining_wire` was last advanced to.
    last_update: SimTime,
    /// Wire bytes (payload + headers) not yet drained from the source.
    remaining_wire: f64,
    /// Current granted rate, bps.
    rate_bps: f64,
    /// Fixed last-packet pipeline latency beyond the source drain:
    /// store-and-forward at every hop after the first plus propagation.
    tail: SimTime,
    /// Bumped on every reschedule; stale completion timers carry old epochs.
    epoch: u32,
    /// Dedup stamp for rebalance scans.
    visit: u32,
    n_hops: u8,
    active: bool,
    /// Still on the ideal-FCT fast path (never shared a link).
    uncontended: bool,
    /// Directed-link indices along the path.
    path: [u32; MAX_HOPS],
    /// Intrusive list next pointers (packed refs), one per hop.
    next: [u32; MAX_HOPS],
    /// Intrusive list prev pointers (packed refs), one per hop.
    prev: [u32; MAX_HOPS],
}

#[inline]
fn pack(flow_idx: u32, hop: usize) -> u32 {
    (flow_idx << 3) | hop as u32
}

#[inline]
fn unpack(r: u32) -> (usize, usize) {
    ((r >> 3) as usize, (r & 7) as usize)
}

/// Picoseconds to drain `wire_bytes` at `rate_bps` (f64 path for contended
/// flows; the fast path uses exact integer [`tx_time`] instead).
#[inline]
fn drain_time(wire_bytes: f64, rate_bps: f64) -> SimTime {
    if rate_bps <= 0.0 {
        return SimTime::MAX;
    }
    SimTime::from_ps((wire_bytes * 8.0 / rate_bps * 1e12).ceil() as u64)
}

/// The flow-level simulator.
///
/// Build with [`FlowSim::new`], load work with [`FlowSim::schedule_flows`],
/// optionally install an [`EcnTuner`], then [`FlowSim::run_until`]. Finished
/// flows accumulate in [`FlowSim::completions`].
pub struct FlowSim {
    topo: Topology,
    routes: RouteTable,
    cfg: FlowSimConfig,
    /// Directed links indexed `link_base[node] + port`.
    links: Vec<LinkModel>,
    link_base: Vec<u32>,
    flows: Vec<FlowState>,
    free: Vec<u32>,
    specs: Vec<FlowSpec>,
    queue: EventQueue,
    now: SimTime,
    completions: Vec<FlowDone>,
    tuner: Option<Box<dyn EcnTuner>>,
    tick_scheduled: bool,
    visit_gen: u32,
    /// Scratch: deduped flow indices touched by a rebalance.
    scratch: Vec<u32>,
    active_flows: u64,
    stats: FlowSimStats,
}

impl FlowSim {
    /// Build an engine over `topo` (ECMP routes are derived internally).
    pub fn new(topo: Topology, cfg: FlowSimConfig) -> FlowSim {
        assert!(
            cfg.fidelity != Fidelity::Packet,
            "Fidelity::Packet is served by netsim::sim::Simulator, not FlowSim"
        );
        let routes = RouteTable::build(&topo);
        let mut link_base = Vec::with_capacity(topo.nodes.len() + 1);
        let mut n_links = 0u32;
        for node in &topo.nodes {
            link_base.push(n_links);
            n_links += node.ports.len() as u32;
        }
        link_base.push(n_links);
        let mut links = Vec::with_capacity(n_links as usize);
        for (ni, node) in topo.nodes.iter().enumerate() {
            let from = NodeId(ni as u32);
            let marks = cfg.fidelity == Fidelity::Hybrid && !topo.is_host(from);
            for (pi, port) in node.ports.iter().enumerate() {
                let ecn = marks.then_some(cfg.switch_ecn);
                links.push(LinkModel::new(
                    port.rate_bps,
                    port.delay,
                    ecn,
                    from,
                    PortId(pi as u16),
                ));
            }
        }
        let n_nodes = topo.nodes.len();
        FlowSim {
            topo,
            routes,
            cfg,
            links,
            link_base,
            flows: Vec::new(),
            free: Vec::new(),
            specs: Vec::new(),
            queue: EventQueue::sized_for(n_nodes),
            now: SimTime::ZERO,
            completions: Vec::new(),
            tuner: None,
            tick_scheduled: false,
            visit_gen: 0,
            scratch: Vec::new(),
            active_flows: 0,
            stats: FlowSimStats::default(),
        }
    }

    /// Install the control-plane tuner (ignored in [`Fidelity::Flow`] mode).
    pub fn set_tuner(&mut self, tuner: Box<dyn EcnTuner>) {
        if self.cfg.fidelity == Fidelity::Hybrid {
            self.tuner = Some(tuner);
        }
    }

    /// Pre-size the slab, free list, scratch and completion log for `n`
    /// additional flows, and (before any event is scheduled) the wheel too —
    /// the zero-alloc steady-state contract.
    pub fn reserve_flows(&mut self, n: usize) {
        let total = self.specs.len() + n;
        self.specs.reserve(n);
        self.flows.reserve(total.saturating_sub(self.flows.len()));
        self.free.reserve(total.saturating_sub(self.free.len()));
        self.completions
            .reserve(total.saturating_sub(self.completions.len()));
        self.scratch
            .reserve(1024usize.saturating_sub(self.scratch.capacity()));
        if self.queue.is_empty() && self.queue.peak_len() == 0 {
            // Arrivals all sit in the wheel up front plus reschedules in
            // flight; size once, before the first push.
            self.queue = EventQueue::sized_for(self.topo.nodes.len().max(4 * total));
        }
    }

    /// Schedule a batch of flows. Flow ids are assigned in order; calls
    /// compose (ids keep counting).
    pub fn schedule_flows(&mut self, specs: &[FlowSpec]) {
        self.reserve_flows(specs.len());
        for s in specs {
            let idx = self.specs.len() as u64;
            self.queue.push(
                s.start,
                Event::HostTimer {
                    host: s.src,
                    token: ARRIVAL_BIT | idx,
                },
            );
            self.specs.push(*s);
        }
    }

    /// Run until the wheel is exhausted or simulated time would pass
    /// `horizon` (events at exactly `horizon` still run).
    pub fn run_until(&mut self, horizon: SimTime) {
        if !self.tick_scheduled {
            self.tick_scheduled = true;
            if let Some(dt) = self.cfg.control_interval {
                if self.tuner.is_some() {
                    self.queue.push(dt, Event::ControlTick);
                }
            }
        }
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let s = self.queue.pop().expect("peeked event vanished");
            self.now = s.time;
            self.stats.events_processed += 1;
            match s.event {
                Event::HostTimer { token, .. } => {
                    if token & ARRIVAL_BIT != 0 {
                        self.start_flow((token & !ARRIVAL_BIT) as usize);
                    } else {
                        self.on_completion(token);
                    }
                }
                Event::ControlTick => self.on_control_tick(),
                _ => {}
            }
        }
        self.now = horizon;
        self.stats.peak_event_queue = self.queue.peak_len();
    }

    /// Completed flows so far, in completion order.
    pub fn completions(&self) -> &[FlowDone] {
        &self.completions
    }

    /// Run counters (also freshens the peak-queue column).
    pub fn stats(&self) -> FlowSimStats {
        let mut s = self.stats;
        s.peak_event_queue = self.queue.peak_len();
        s
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fidelity this engine was built with (never [`Fidelity::Packet`]).
    pub fn fidelity(&self) -> Fidelity {
        self.cfg.fidelity
    }

    /// The topology the engine runs over.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The directed-link table (telemetry may lag `now`; control ticks
    /// advance it).
    pub fn links(&self) -> &[LinkModel] {
        &self.links
    }

    /// Index into [`FlowSim::links`] for `node`'s egress `port`.
    pub fn link_index(&self, node: NodeId, port: PortId) -> usize {
        (self.link_base[node.idx()] + port.0 as u32) as usize
    }

    /// Granted rates of the flows active on link `li` (test/debug helper;
    /// allocates).
    #[doc(hidden)]
    pub fn flow_rates_on_link(&self, li: usize) -> Vec<f64> {
        let mut out = Vec::new();
        let mut r = self.links[li].head;
        while r != NIL {
            let (fi, hop) = unpack(r);
            out.push(self.flows[fi].rate_bps);
            r = self.flows[fi].next[hop];
        }
        out
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn start_flow(&mut self, spec_idx: usize) {
        let spec = self.specs[spec_idx];
        let mut path = [0u32; MAX_HOPS];
        let mut delays = SimTime::ZERO;
        let mut n_hops = 0usize;
        let flow_id = FlowId(spec_idx as u64);
        let mut node = spec.src;
        while node != spec.dst {
            let Some(port) = self.routes.try_next_hop(node, spec.dst, flow_id) else {
                self.stats.unrouted_flows += 1;
                return;
            };
            let li = self.link_base[node.idx()] + port.0 as u32;
            assert!(n_hops < MAX_HOPS, "path longer than MAX_HOPS");
            path[n_hops] = li;
            n_hops += 1;
            let info = self.topo.port(node, port);
            delays += info.delay;
            node = info.peer_node;
        }

        // Wire-byte segmentation, identical to the transport stack's.
        let mtu = self.cfg.mtu_payload as u64;
        let full = spec.bytes / mtu;
        let rem = spec.bytes % mtu;
        let total_wire = full * (mtu + 48) + if rem > 0 { rem + 48 } else { 0 };
        let last_payload = if rem > 0 { rem } else { mtu.min(spec.bytes) };
        let last_wire = last_payload + 48;

        // Fixed pipeline tail: propagation on every hop, store-and-forward
        // of the last packet on every hop after the source's own drain.
        let mut tail = delays;
        let mut bottleneck = u64::MAX;
        for (hop, &li) in path.iter().enumerate().take(n_hops) {
            let cap = self.links[li as usize].capacity_bps;
            bottleneck = bottleneck.min(cap);
            if hop > 0 {
                tail += tx_time(last_wire, cap);
            }
        }

        let uncontended = path[..n_hops]
            .iter()
            .all(|&li| self.links[li as usize].n_active == 0);
        for &li in &path[..n_hops] {
            self.links[li as usize].advance(self.now);
        }

        let fi = self.alloc_slot();
        {
            let f = &mut self.flows[fi];
            f.flow = flow_id;
            f.src = spec.src;
            f.dst = spec.dst;
            f.bytes = spec.bytes;
            f.prio = spec.prio;
            f.tag = spec.tag;
            f.start = self.now;
            f.last_update = self.now;
            f.remaining_wire = total_wire as f64;
            f.rate_bps = 0.0;
            f.tail = tail;
            f.n_hops = n_hops as u8;
            f.active = true;
            f.uncontended = uncontended;
            f.path = path;
        }
        for (hop, &li) in path.iter().enumerate().take(n_hops) {
            self.list_push(li as usize, fi, hop);
        }
        self.stats.flows_started += 1;
        self.active_flows += 1;
        self.stats.peak_active_flows = self.stats.peak_active_flows.max(self.active_flows);

        if uncontended {
            // Ideal-FCT fast path: exact integer drain at the raw
            // bottleneck capacity; one completion event, never revisited
            // unless a sharer shows up.
            self.stats.fast_path_flows += 1;
            let rate = bottleneck as f64;
            let done = self.now + tx_time(total_wire, bottleneck) + tail;
            let f = &mut self.flows[fi];
            f.rate_bps = rate;
            for &li in &path[..n_hops] {
                self.links[li as usize].sum_rate_bps += rate;
            }
            self.push_completion(fi, done);
        } else {
            self.rebalance(path, n_hops);
        }
    }

    fn on_completion(&mut self, token: u64) {
        let fi = (token >> 32) as usize;
        let epoch = token as u32;
        if fi >= self.flows.len() || !self.flows[fi].active || self.flows[fi].epoch != epoch {
            self.stats.stale_events += 1;
            return;
        }
        let (path, n_hops, rate, done) = {
            let f = &self.flows[fi];
            (
                f.path,
                f.n_hops as usize,
                f.rate_bps,
                FlowDone {
                    flow: f.flow,
                    src: f.src,
                    dst: f.dst,
                    bytes: f.bytes,
                    prio: f.prio,
                    tag: f.tag,
                    start: f.start,
                    end: self.now,
                },
            )
        };
        for &li in &path[..n_hops] {
            self.links[li as usize].advance(self.now);
        }
        for (hop, &li) in path.iter().enumerate().take(n_hops) {
            self.list_remove(li as usize, fi, hop);
            let l = &mut self.links[li as usize];
            l.sum_rate_bps = (l.sum_rate_bps - rate).max(0.0);
        }
        self.flows[fi].active = false;
        self.free.push(fi as u32);
        self.active_flows -= 1;
        self.stats.flows_completed += 1;
        self.completions.push(done);
        self.rebalance(path, n_hops);
    }

    fn on_control_tick(&mut self) {
        let now = self.now;
        for l in &mut self.links {
            l.advance(now);
        }
        if let Some(mut t) = self.tuner.take() {
            t.on_tick(now, &mut self.links);
            self.tuner = Some(t);
        }
        if let Some(dt) = self.cfg.control_interval {
            self.queue.push(now + dt, Event::ControlTick);
        }
    }

    // ------------------------------------------------------------------
    // Rate maintenance
    // ------------------------------------------------------------------

    /// Recompute min-share rates for every flow on the given links (the
    /// path of a flow that just arrived or departed) and reschedule the
    /// ones whose rate changed. Membership is fixed during the scan, so
    /// per-link offers don't shift underneath it and the result is
    /// independent of visit order.
    fn rebalance(&mut self, path: [u32; MAX_HOPS], n_hops: usize) {
        self.visit_gen = self.visit_gen.wrapping_add(1);
        let gen = self.visit_gen;
        self.scratch.clear();
        for &li in &path[..n_hops] {
            let mut r = self.links[li as usize].head;
            while r != NIL {
                let (fi, hop) = unpack(r);
                if self.flows[fi].visit != gen {
                    self.flows[fi].visit = gen;
                    self.scratch.push(fi as u32);
                }
                r = self.flows[fi].next[hop];
            }
        }
        for i in 0..self.scratch.len() {
            let fi = self.scratch[i] as usize;
            let (fpath, fhops, old) = {
                let f = &self.flows[fi];
                (f.path, f.n_hops as usize, f.rate_bps)
            };
            let mut rate = f64::INFINITY;
            for &li in &fpath[..fhops] {
                rate = rate.min(self.links[li as usize].share());
            }
            if (rate - old).abs() > 1e-6 * (old.abs() + 1.0) {
                self.update_flow_rate(fi, rate);
            }
        }
    }

    /// Advance a flow's drained bytes to `now`, grant it a new rate, fix
    /// the per-link rate sums, and reschedule its completion under a fresh
    /// epoch.
    fn update_flow_rate(&mut self, fi: usize, new_rate: f64) {
        let now = self.now;
        let (path, n_hops, old_rate) = {
            let f = &mut self.flows[fi];
            let dt = now.saturating_sub(f.last_update).as_secs_f64();
            f.remaining_wire = (f.remaining_wire - f.rate_bps / 8.0 * dt).max(0.0);
            f.last_update = now;
            // Fully drained: the source finished sending and only the
            // delivery tail is in flight. The pending completion timer is
            // already exact; rescheduling it from `now` would re-add the
            // tail once per rebalance that lands inside the tail window
            // (simultaneous incast completions cascade exactly that way).
            if f.remaining_wire == 0.0 {
                return;
            }
            let old = f.rate_bps;
            f.rate_bps = new_rate;
            f.uncontended = false;
            f.epoch = f.epoch.wrapping_add(1);
            (f.path, f.n_hops as usize, old)
        };
        let delta = new_rate - old_rate;
        for &li in &path[..n_hops] {
            let l = &mut self.links[li as usize];
            l.advance(now);
            l.sum_rate_bps = (l.sum_rate_bps + delta).max(0.0);
        }
        let done = now + drain_time(self.flows[fi].remaining_wire, new_rate) + self.flows[fi].tail;
        self.push_completion(fi, done);
    }

    // ------------------------------------------------------------------
    // Slab + intrusive lists
    // ------------------------------------------------------------------

    fn alloc_slot(&mut self) -> usize {
        if let Some(fi) = self.free.pop() {
            return fi as usize;
        }
        self.flows.push(FlowState {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(0),
            bytes: 0,
            prio: 0,
            tag: 0,
            start: SimTime::ZERO,
            last_update: SimTime::ZERO,
            remaining_wire: 0.0,
            rate_bps: 0.0,
            tail: SimTime::ZERO,
            epoch: 0,
            visit: 0,
            n_hops: 0,
            active: false,
            uncontended: false,
            path: [0; MAX_HOPS],
            next: [NIL; MAX_HOPS],
            prev: [NIL; MAX_HOPS],
        });
        self.flows.len() - 1
    }

    fn push_completion(&mut self, fi: usize, at: SimTime) {
        let f = &self.flows[fi];
        let token = ((fi as u64) << 32) | f.epoch as u64;
        self.queue.push(at, Event::HostTimer { host: f.src, token });
    }

    fn list_push(&mut self, li: usize, fi: usize, hop: usize) {
        let r = pack(fi as u32, hop);
        let old_head = self.links[li].head;
        self.flows[fi].next[hop] = old_head;
        self.flows[fi].prev[hop] = NIL;
        if old_head != NIL {
            let (hfi, hhop) = unpack(old_head);
            self.flows[hfi].prev[hhop] = r;
        }
        self.links[li].head = r;
        self.links[li].n_active += 1;
    }

    fn list_remove(&mut self, li: usize, fi: usize, hop: usize) {
        let nx = self.flows[fi].next[hop];
        let pv = self.flows[fi].prev[hop];
        if pv == NIL {
            self.links[li].head = nx;
        } else {
            let (pfi, phop) = unpack(pv);
            self.flows[pfi].next[phop] = nx;
        }
        if nx != NIL {
            let (nfi, nhop) = unpack(nx);
            self.flows[nfi].prev[nhop] = pv;
        }
        self.flows[fi].next[hop] = NIL;
        self.flows[fi].prev[hop] = NIL;
        self.links[li].n_active -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologySpec;

    fn single_switch(n: usize) -> Topology {
        TopologySpec::single_switch(n, 25_000_000_000, SimTime::from_ns(500)).build()
    }

    fn spec(src: u32, dst: u32, bytes: u64, start: SimTime) -> FlowSpec {
        FlowSpec {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            prio: 1,
            tag: 0,
            start,
        }
    }

    /// Closed-form ideal FCT on single_switch: drain all wire bytes at
    /// 25 Gbps, then store-and-forward the last packet once, plus two
    /// propagation delays.
    fn ideal_fct(bytes: u64) -> SimTime {
        let mtu = 1000u64;
        let full = bytes / mtu;
        let rem = bytes % mtu;
        let total_wire = full * 1048 + if rem > 0 { rem + 48 } else { 0 };
        let last_wire = if rem > 0 {
            rem + 48
        } else {
            mtu.min(bytes) + 48
        };
        tx_time(total_wire, 25_000_000_000)
            + tx_time(last_wire, 25_000_000_000)
            + SimTime::from_ns(1000)
    }

    #[test]
    fn lone_flow_matches_closed_form() {
        for bytes in [300u64, 1000, 64 * 1024, 1_000_000] {
            let topo = single_switch(4);
            let hosts = topo.hosts().to_vec();
            let mut sim = FlowSim::new(topo, FlowSimConfig::default());
            sim.schedule_flows(&[spec(hosts[0].0, hosts[1].0, bytes, SimTime::from_us(1))]);
            sim.run_until(SimTime::from_ms(100));
            let done = sim.completions();
            assert_eq!(done.len(), 1, "{bytes}B flow must finish");
            let fct = done[0].end - done[0].start;
            assert_eq!(fct, ideal_fct(bytes), "{bytes}B lone-flow FCT");
            assert_eq!(sim.stats().fast_path_flows, 1);
            assert_eq!(sim.stats().stale_events, 0);
        }
    }

    #[test]
    fn two_sharers_halve_throughput() {
        let topo = single_switch(4);
        let hosts = topo.hosts().to_vec();
        let mut sim = FlowSim::new(topo, FlowSimConfig::default());
        // Both flows target host 1: they share its switch-egress link.
        let bytes = 10_000_000u64;
        sim.schedule_flows(&[
            spec(hosts[0].0, hosts[1].0, bytes, SimTime::ZERO),
            spec(hosts[2].0, hosts[1].0, bytes, SimTime::ZERO),
        ]);
        sim.run_until(SimTime::from_secs(1));
        let done = sim.completions();
        assert_eq!(done.len(), 2);
        let lone = ideal_fct(bytes);
        for d in done {
            let fct = (d.end - d.start).as_us_f64();
            let ratio = fct / lone.as_us_f64();
            // Fair share halves the rate; drag and tail keep it near 2x.
            assert!(
                (1.9..=2.1).contains(&ratio),
                "shared FCT should be ~2x lone, got {ratio}"
            );
        }
    }

    #[test]
    fn late_sharer_promotes_fast_path_flow() {
        let topo = single_switch(4);
        let hosts = topo.hosts().to_vec();
        let mut sim = FlowSim::new(topo, FlowSimConfig::default());
        let bytes = 10_000_000u64;
        // Second flow arrives halfway through the first's lone drain.
        let half = SimTime::from_ps(ideal_fct(bytes).as_ps() / 2);
        sim.schedule_flows(&[
            spec(hosts[0].0, hosts[1].0, bytes, SimTime::ZERO),
            spec(hosts[2].0, hosts[1].0, bytes, half),
        ]);
        sim.run_until(SimTime::from_secs(1));
        let done = sim.completions();
        assert_eq!(done.len(), 2);
        // First flow: half at full rate, then shared; expect ~1.5x lone.
        let f0 = done
            .iter()
            .find(|d| d.src == hosts[0])
            .expect("first flow finished");
        let ratio = (f0.end - f0.start).as_us_f64() / ideal_fct(bytes).as_us_f64();
        assert!(
            (1.3..=1.7).contains(&ratio),
            "promoted flow ~1.5x lone, got {ratio}"
        );
        // The stale original completion timer must have been ignored.
        assert!(sim.stats().stale_events >= 1);
        assert_eq!(sim.stats().flows_completed, 2);
    }

    #[test]
    fn conservation_all_flows_complete() {
        let topo = single_switch(8);
        let hosts = topo.hosts().to_vec();
        let mut sim = FlowSim::new(topo, FlowSimConfig::default());
        let mut specs = Vec::new();
        for i in 0..64u64 {
            let s = (i % 8) as usize;
            let d = ((i + 3) % 8) as usize;
            specs.push(spec(
                hosts[s].0,
                hosts[d].0,
                1_000 + i * 7_919,
                SimTime::from_us(i * 5),
            ));
        }
        sim.schedule_flows(&specs);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.completions().len(), 64);
        // Every link list must be empty again.
        for li in 0..sim.links().len() {
            assert_eq!(sim.links()[li].n_active, 0);
            assert!(sim.flow_rates_on_link(li).is_empty());
        }
    }

    #[test]
    fn hybrid_telemetry_reaches_tuner() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default, Clone, Copy)]
        struct Seen {
            ticks: u32,
            marks: bool,
            queue: bool,
        }
        struct Probe(Rc<RefCell<Seen>>);
        impl EcnTuner for Probe {
            fn on_tick(&mut self, _now: SimTime, links: &mut [LinkModel]) {
                let mut s = self.0.borrow_mut();
                s.ticks += 1;
                for l in links.iter() {
                    if l.ecn.is_some() {
                        s.marks |= l.telem.tx_marked_bytes > 0;
                        s.queue |= l.telem.qlen_integral_byte_ps > 0;
                    }
                }
            }
        }

        let topo = single_switch(8);
        let hosts = topo.hosts().to_vec();
        let mut sim = FlowSim::new(topo, FlowSimConfig::default());
        // 4-to-1 incast: the receiver's switch-egress link saturates and
        // the analytic queue model must produce queue depth and marks.
        let specs: Vec<FlowSpec> = (0..4)
            .map(|i| spec(hosts[i + 1].0, hosts[0].0, 5_000_000, SimTime::ZERO))
            .collect();
        sim.schedule_flows(&specs);
        let seen = Rc::new(RefCell::new(Seen::default()));
        sim.set_tuner(Box::new(Probe(seen.clone())));
        sim.run_until(SimTime::from_ms(50));
        assert_eq!(sim.completions().len(), 4);
        let s = *seen.borrow();
        assert!(s.ticks > 10, "control ticks must fire");
        assert!(s.queue, "saturated link must report queue depth");
        assert!(s.marks, "saturated link must report ECN marks");
    }

    #[test]
    fn flow_fidelity_disables_ecn_model() {
        let topo = single_switch(8);
        let hosts = topo.hosts().to_vec();
        let cfg = FlowSimConfig {
            fidelity: Fidelity::Flow,
            ..Default::default()
        };
        let mut sim = FlowSim::new(topo, cfg);
        let specs: Vec<FlowSpec> = (0..4)
            .map(|i| spec(hosts[i + 1].0, hosts[0].0, 5_000_000, SimTime::ZERO))
            .collect();
        sim.schedule_flows(&specs);
        sim.run_until(SimTime::from_ms(50));
        assert_eq!(sim.completions().len(), 4);
        for l in sim.links() {
            assert!(l.ecn.is_none(), "flow fidelity carries no ECN model");
            assert_eq!(l.telem.tx_marked_bytes, 0);
        }
    }

    #[test]
    fn fidelity_parse_roundtrip() {
        for f in [Fidelity::Packet, Fidelity::Hybrid, Fidelity::Flow] {
            assert_eq!(Fidelity::parse(f.name()), Some(f));
        }
        assert_eq!(Fidelity::parse("bogus"), None);
    }
}
