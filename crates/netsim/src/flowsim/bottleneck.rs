//! Per-link analytic bottleneck model: min-share rates, equilibrium queue,
//! and lazily-advanced telemetry counters.
//!
//! The share rule is deliberately simple so its invariants are provable: a
//! link offers each of its `n` active flows `eff_capacity / n`. A flow's
//! rate is the minimum offer along its path, therefore per link the sum of
//! granted rates is at most `n * (capacity / n) = capacity` — capacity is
//! never oversubscribed and shares are never negative (the property the
//! proptest at the bottom pins down). When every flow on a link bottlenecks
//! there, this equals max-min fairness; when some flows are throttled
//! elsewhere the link under-uses its capacity rather than redistributing the
//! slack, which is the conservative direction for queue modeling.

use crate::ids::{NodeId, PortId};
use crate::queues::{EcnConfig, QueueTelemetry};
use crate::time::SimTime;

/// Wire bytes of a full-MTU data packet (payload + header), used to convert
/// modeled byte throughput into packet counts for telemetry.
const FULL_PKT_WIRE: f64 = 1048.0;

/// Fraction of capacity shed per unit mark probability on a saturated link:
/// `eff_capacity = capacity * (1 - DRAG * p_mark)`. This gives a tuner a
/// smooth throughput-vs-latency gradient (aggressive ECN costs bandwidth,
/// as in the ACC paper's tradeoff) while staying negligible (< 0.2%) for
/// the paper's DCQCN setting of `Pmax = 1%`.
pub const MARK_DRAG: f64 = 0.2;

/// Saturation shape parameter for [`qstar_bytes`]: the equilibrium queue
/// climbs from `Kmin` toward `Kmax` as `n / (n + QSTAR_HALF)`.
const QSTAR_HALF: f64 = 8.0;

/// Equilibrium queue depth (bytes) of a saturated link shared by `n` flows
/// under RED/ECN config `ecn`.
///
/// DCQCN/DCTCP hold a marked queue near the marking band: with few sharers
/// the operating point sits just above `Kmin`; as `n` grows, synchronized
/// rate-cuts get rarer relative to offered load and the queue climbs toward
/// `Kmax`. We model that with a saturating ramp
/// `Kmin + (Kmax - Kmin) * n / (n + 8)`, clamped to `[Kmin, Kmax]`.
/// Returns 0 for `n < 2`: a lone flow paces at its own rate and never
/// builds standing queue (below `Kmin`, it is never marked — the same
/// reason the ideal-FCT fast path is exact).
pub fn qstar_bytes(ecn: &EcnConfig, n_active: u32) -> u64 {
    if n_active < 2 {
        return 0;
    }
    let n = n_active as f64;
    let span = ecn.kmax_bytes.saturating_sub(ecn.kmin_bytes) as f64;
    let q = ecn.kmin_bytes as f64 + span * n / (n + QSTAR_HALF);
    (q as u64).clamp(ecn.kmin_bytes, ecn.kmax_bytes)
}

/// Effective capacity of a link shared by `n_active` flows: raw capacity,
/// reduced by [`MARK_DRAG`] times the equilibrium mark probability when the
/// link carries an ECN config and enough sharers to congest (`n >= 2`).
/// Pure in `(capacity, ecn, n_active)` so rate updates stay local.
pub fn eff_capacity_bps(capacity_bps: u64, ecn: Option<&EcnConfig>, n_active: u32) -> f64 {
    let cap = capacity_bps as f64;
    match ecn {
        Some(cfg) if n_active >= 2 => {
            let p = cfg.mark_probability(qstar_bytes(cfg, n_active));
            cap * (1.0 - MARK_DRAG * p)
        }
        _ => cap,
    }
}

/// The rate (bps) a link offers each of its `n_active` flows. Zero flows
/// offer the full effective capacity (the value an arriving flow would see).
pub fn share_bps(capacity_bps: u64, ecn: Option<&EcnConfig>, n_active: u32) -> f64 {
    let n = n_active.max(1) as f64;
    eff_capacity_bps(capacity_bps, ecn, n_active) / n
}

/// One directed link's analytic state: capacity, ECN config, the intrusive
/// active-flow list head, and lazily-advanced telemetry.
///
/// Telemetry counters mirror the packet engine's
/// [`QueueTelemetry`] semantics — monotone totals a
/// controller differences between ticks — but are integrated analytically:
/// on every transition touching the link, the elapsed interval is priced at
/// the current aggregate rate and modeled queue depth.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Raw serialization capacity, bits per second.
    pub capacity_bps: u64,
    /// Propagation delay of the link.
    pub delay: SimTime,
    /// RED/ECN marking config; `None` on host-egress links (hosts pace,
    /// they don't mark) and in [`super::Fidelity::Flow`] mode.
    pub ecn: Option<EcnConfig>,
    /// Node the link leaves from.
    pub from_node: NodeId,
    /// Egress port on `from_node`.
    pub from_port: PortId,
    /// Head of the intrusive active-flow list (packed flow/hop ref), or
    /// [`super::engine::NIL`].
    pub(crate) head: u32,
    /// Number of flows currently active on the link.
    pub n_active: u32,
    /// Sum of the rates currently granted to flows on this link, bps.
    /// Maintained incrementally; drives throughput telemetry.
    pub sum_rate_bps: f64,
    /// Monotone telemetry counters, advanced lazily up to `last_advance`.
    pub telem: QueueTelemetry,
    /// Time the telemetry integrals were last advanced to.
    pub(crate) last_advance: SimTime,
    /// Fractional-byte residue carried between telemetry advances.
    tx_bytes_frac: f64,
    /// Fractional-packet residue.
    tx_pkts_frac: f64,
    /// Fractional marked-byte residue.
    tx_marked_bytes_frac: f64,
    /// Fractional marked-packet residue.
    tx_marked_pkts_frac: f64,
}

impl LinkModel {
    /// A fresh link model with idle telemetry.
    pub fn new(
        capacity_bps: u64,
        delay: SimTime,
        ecn: Option<EcnConfig>,
        from_node: NodeId,
        from_port: PortId,
    ) -> Self {
        LinkModel {
            capacity_bps,
            delay,
            ecn,
            from_node,
            from_port,
            head: u32::MAX,
            n_active: 0,
            sum_rate_bps: 0.0,
            telem: QueueTelemetry::default(),
            last_advance: SimTime::ZERO,
            tx_bytes_frac: 0.0,
            tx_pkts_frac: 0.0,
            tx_marked_bytes_frac: 0.0,
            tx_marked_pkts_frac: 0.0,
        }
    }

    /// The rate this link would offer one more flow, bps.
    pub fn share_for_new_flow(&self) -> f64 {
        share_bps(self.capacity_bps, self.ecn.as_ref(), self.n_active + 1)
    }

    /// The rate this link offers each current flow, bps.
    pub fn share(&self) -> f64 {
        share_bps(self.capacity_bps, self.ecn.as_ref(), self.n_active)
    }

    /// Modeled instantaneous queue depth in bytes: the equilibrium queue
    /// when the link is both shared (`n >= 2`) and actually saturated
    /// (granted rates within 5% of effective capacity — flows all
    /// bottlenecked elsewhere leave the queue empty), else zero.
    pub fn qlen_bytes(&self) -> u64 {
        let Some(cfg) = &self.ecn else { return 0 };
        if self.n_active < 2 {
            return 0;
        }
        let eff = eff_capacity_bps(self.capacity_bps, self.ecn.as_ref(), self.n_active);
        if self.sum_rate_bps >= 0.95 * eff {
            qstar_bytes(cfg, self.n_active)
        } else {
            0
        }
    }

    /// Current equilibrium mark probability (0 when the queue model is
    /// empty or the link has no ECN config).
    pub fn mark_probability(&self) -> f64 {
        match &self.ecn {
            Some(cfg) => cfg.mark_probability(self.qlen_bytes()),
            None => 0.0,
        }
    }

    /// Advance the telemetry integrals from `last_advance` to `now`,
    /// pricing the interval at the current aggregate rate and modeled
    /// queue. Idempotent at equal timestamps; call before any membership
    /// or rate change on the link.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_advance);
        if dt == SimTime::ZERO {
            return;
        }
        self.last_advance = now;
        if self.sum_rate_bps <= 0.0 {
            return;
        }
        let dt_s = dt.as_secs_f64();
        let bytes = self.sum_rate_bps / 8.0 * dt_s + self.tx_bytes_frac;
        let whole = bytes.floor();
        self.tx_bytes_frac = bytes - whole;
        self.telem.tx_bytes += whole as u64;

        let pkts = self.sum_rate_bps / 8.0 * dt_s / FULL_PKT_WIRE + self.tx_pkts_frac;
        let whole_p = pkts.floor();
        self.tx_pkts_frac = pkts - whole_p;
        self.telem.tx_pkts += whole_p as u64;
        self.telem.enq_pkts += whole_p as u64;

        let q = self.qlen_bytes();
        self.telem.qlen_integral_byte_ps += (q as u128) * (dt.as_ps() as u128);
        self.telem.max_qlen_bytes = self.telem.max_qlen_bytes.max(q);

        let p = self.mark_probability();
        if p > 0.0 {
            let mb = self.sum_rate_bps / 8.0 * dt_s * p + self.tx_marked_bytes_frac;
            let mw = mb.floor();
            self.tx_marked_bytes_frac = mb - mw;
            self.telem.tx_marked_bytes += mw as u64;
            let mp = self.sum_rate_bps / 8.0 * dt_s / FULL_PKT_WIRE * p + self.tx_marked_pkts_frac;
            let mpw = mp.floor();
            self.tx_marked_pkts_frac = mp - mpw;
            self.telem.tx_marked_pkts += mpw as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcqcn() -> EcnConfig {
        EcnConfig::dcqcn_paper()
    }

    #[test]
    fn qstar_shape() {
        let cfg = dcqcn();
        assert_eq!(qstar_bytes(&cfg, 0), 0);
        assert_eq!(qstar_bytes(&cfg, 1), 0);
        let q2 = qstar_bytes(&cfg, 2);
        let q8 = qstar_bytes(&cfg, 8);
        let q1000 = qstar_bytes(&cfg, 1000);
        assert!(q2 >= cfg.kmin_bytes && q2 <= cfg.kmax_bytes);
        assert!(q8 > q2, "queue grows with sharers");
        assert!(q1000 <= cfg.kmax_bytes, "clamped at Kmax");
    }

    #[test]
    fn shares_bounded_by_capacity() {
        let cfg = dcqcn();
        for n in 0..64u32 {
            let s = share_bps(25_000_000_000, Some(&cfg), n);
            assert!(s >= 0.0);
            assert!(s * n.max(1) as f64 <= 25_000_000_000.0 + 1.0);
        }
    }

    #[test]
    fn telemetry_integrates_rate() {
        let mut l = LinkModel::new(
            25_000_000_000,
            SimTime::from_ns(500),
            Some(dcqcn()),
            NodeId(0),
            PortId(0),
        );
        l.n_active = 2;
        l.sum_rate_bps = 25_000_000_000.0;
        l.advance(SimTime::from_us(100));
        // 25 Gbps for 100 us = 312_500 bytes.
        assert!((l.telem.tx_bytes as i64 - 312_500).abs() <= 1);
        assert!(l.telem.tx_pkts > 0);
        assert!(l.telem.qlen_integral_byte_ps > 0, "saturated link queues");
        // Idempotent at the same timestamp.
        let snap = l.telem.tx_bytes;
        l.advance(SimTime::from_us(100));
        assert_eq!(l.telem.tx_bytes, snap);
    }

    #[test]
    fn lone_flow_never_marks() {
        let mut l = LinkModel::new(
            25_000_000_000,
            SimTime::from_ns(500),
            Some(dcqcn()),
            NodeId(0),
            PortId(0),
        );
        l.n_active = 1;
        l.sum_rate_bps = 25_000_000_000.0;
        l.advance(SimTime::from_ms(1));
        assert_eq!(l.telem.tx_marked_bytes, 0);
        assert_eq!(l.qlen_bytes(), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Shares are non-negative and per link the sum of granted
            /// min-share rates never exceeds raw capacity: each of the
            /// `n` flows is granted at most this link's offer
            /// `eff_cap / n <= cap / n`.
            #[test]
            fn min_share_within_capacity(
                caps in prop::collection::vec(1_000_000u64..400_000_000_000, 1..8),
                // Flows as index sets into the link vector (paths).
                paths in prop::collection::vec(
                    prop::collection::vec(0usize..8, 1..6), 0..32),
                kmin in 1_000u64..100_000,
                span in 0u64..500_000,
                pmax in 0.0f64..=1.0,
            ) {
                let ecn = EcnConfig::new(kmin, kmin + span, pmax);
                // Count active flows per link.
                let mut n_active = vec![0u32; caps.len()];
                let paths: Vec<Vec<usize>> = paths
                    .into_iter()
                    .map(|p| p.into_iter().map(|i| i % caps.len()).collect())
                    .collect();
                for p in &paths {
                    let mut seen = [false; 8];
                    for &l in p {
                        if !seen[l] {
                            seen[l] = true;
                            n_active[l] += 1;
                        }
                    }
                }
                // Grant each flow its min share; accumulate per link.
                let mut granted = vec![0.0f64; caps.len()];
                for p in &paths {
                    let rate = p
                        .iter()
                        .map(|&l| share_bps(caps[l], Some(&ecn), n_active[l]))
                        .fold(f64::INFINITY, f64::min);
                    prop_assert!(rate >= 0.0, "share must be non-negative");
                    prop_assert!(rate.is_finite());
                    let mut seen = [false; 8];
                    for &l in p {
                        if !seen[l] {
                            seen[l] = true;
                            granted[l] += rate;
                        }
                    }
                }
                for (l, &g) in granted.iter().enumerate() {
                    // Tolerance for f64 summation only: the bound itself
                    // is exact.
                    prop_assert!(
                        g <= caps[l] as f64 * (1.0 + 1e-9),
                        "link {l}: granted {g} > capacity {}",
                        caps[l]
                    );
                }
            }
        }
    }
}
