//! # flowsim — analytic flow-level backend behind the packet simulator's interface
//!
//! The packet engine prices every uncontended flow at full per-packet cost,
//! which caps websearch/storage matrices at ~10³ flows. This module models the
//! same fabric at *flow* granularity, minim-style: each active flow holds an
//! analytic rate equal to its **min-share** across the directed links on its
//! path (`capacity / n_active`, a conservative max-min approximation that is
//! exact whenever a flow has a single bottleneck), and progress is advanced
//! lazily — only when a flow arrives, departs, or a control tick fires. The
//! engine schedules those moments on the same timing wheel
//! ([`crate::event::EventQueue`]) the packet engine uses, with stale
//! completion timers invalidated by epoch instead of removed.
//!
//! Three properties tie it back to the ACC reproduction:
//!
//! * **Ideal-FCT fast path** — a flow whose path is idle at arrival is
//!   priced in O(1): source-drain time at line rate plus per-hop
//!   store-and-forward of the last packet plus propagation, matching the
//!   packet engine's uncontended timing (DCQCN starts at line rate and an
//!   unshared queue never reaches `Kmin`, so no marks, no rate cuts).
//! * **Analytic ECN feedback** — in [`Fidelity::Hybrid`] mode each
//!   contended switch-egress link carries an equilibrium queue model
//!   ([`bottleneck::qstar`]) from which ECN mark probability and queue depth
//!   are derived and fed to the controller through the same
//!   [`crate::queues::QueueTelemetry`] counters the packet engine exposes,
//!   so DDQN / guarded ACC tick unchanged (see the [`EcnTuner`] trait).
//! * **Determinism** — no randomness at all: rates, queues and marks are
//!   pure functions of flow membership, and event order is the wheel's
//!   `(time, seq)` order. Identical inputs give identical runs.
//!
//! Known divergences from the packet engine (documented in EXPERIMENTS.md):
//! convergence transients of DCQCN/DCTCP are collapsed to instantaneous
//! fair-share, PFC is not modeled (the analytic queue cannot overflow), and
//! ACK-path bandwidth (64-byte ACK/CNP frames) is ignored.

pub mod bottleneck;
pub mod engine;

pub use bottleneck::{eff_capacity_bps, qstar_bytes, share_bps, LinkModel};
pub use engine::{EcnTuner, Fidelity, FlowDone, FlowSim, FlowSimConfig, FlowSimStats, FlowSpec};
