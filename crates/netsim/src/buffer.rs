//! Shared switch buffer with dynamic-threshold PFC accounting.
//!
//! Commodity switching chips pool most of their packet memory and account
//! buffered bytes against the *ingress* (port, priority) a packet arrived on.
//! When an ingress counter exceeds a dynamic Xoff threshold — a fraction
//! `alpha` of the remaining free buffer — the switch sends a PFC PAUSE
//! upstream for that priority; once the counter falls below the Xon point it
//! sends RESUME. The ACC paper's testbed uses the NIC-vendor default
//! `alpha = 1/8` (§5.1), i.e. pause when an ingress queue consumes more than
//! ~11% of the free buffer.

use serde::{Deserialize, Serialize};

/// Shared-buffer occupancy and PFC threshold logic for one switch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SharedBuffer {
    /// Total packet memory in bytes.
    pub total: u64,
    /// Bytes currently buffered (across all ports/classes).
    pub used: u64,
    /// Dynamic threshold parameter.
    pub alpha: f64,
    /// Xon point as a fraction of the Xoff threshold (hysteresis).
    pub xon_frac: f64,
}

impl SharedBuffer {
    /// Create an empty buffer.
    pub fn new(total: u64, alpha: f64, xon_frac: f64) -> Self {
        assert!(total > 0 && alpha > 0.0 && (0.0..=1.0).contains(&xon_frac));
        SharedBuffer {
            total,
            used: 0,
            alpha,
            xon_frac,
        }
    }

    /// Free bytes remaining.
    #[inline]
    pub fn free(&self) -> u64 {
        self.total - self.used
    }

    /// Can `size` more bytes be admitted at all?
    #[inline]
    pub fn can_admit(&self, size: u32) -> bool {
        self.used + size as u64 <= self.total
    }

    /// Charge `size` bytes to the pool. Panics if the caller skipped
    /// [`SharedBuffer::can_admit`].
    #[inline]
    pub fn charge(&mut self, size: u32) {
        self.used += size as u64;
        assert!(self.used <= self.total, "shared buffer overcommitted");
    }

    /// Release `size` bytes back to the pool.
    #[inline]
    pub fn release(&mut self, size: u32) {
        debug_assert!(self.used >= size as u64, "releasing more than charged");
        self.used = self.used.saturating_sub(size as u64);
    }

    /// Current Xoff threshold: an ingress counter above this triggers PAUSE.
    #[inline]
    pub fn xoff_threshold(&self) -> u64 {
        (self.alpha * self.free() as f64) as u64
    }

    /// Should PAUSE be asserted for an ingress counter of `ingress_bytes`?
    #[inline]
    pub fn should_pause(&self, ingress_bytes: u64) -> bool {
        ingress_bytes > self.xoff_threshold()
    }

    /// Should RESUME be sent for an ingress counter of `ingress_bytes`
    /// (given PAUSE is currently asserted)?
    #[inline]
    pub fn should_resume(&self, ingress_bytes: u64) -> bool {
        (ingress_bytes as f64) < self.xon_frac * self.xoff_threshold() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_round_trip() {
        let mut b = SharedBuffer::new(1000, 0.125, 0.5);
        assert!(b.can_admit(1000));
        b.charge(600);
        assert_eq!(b.free(), 400);
        assert!(!b.can_admit(401));
        b.release(600);
        assert_eq!(b.used, 0);
    }

    #[test]
    fn xoff_shrinks_as_buffer_fills() {
        let mut b = SharedBuffer::new(32 * 1024 * 1024, 0.125, 0.5);
        let empty_xoff = b.xoff_threshold();
        b.charge(16 * 1024 * 1024);
        let half_xoff = b.xoff_threshold();
        assert_eq!(empty_xoff, 4 * 1024 * 1024);
        assert_eq!(half_xoff, 2 * 1024 * 1024);
    }

    #[test]
    fn pause_resume_hysteresis() {
        let b = SharedBuffer::new(1_000_000, 0.1, 0.5);
        let xoff = b.xoff_threshold(); // 100_000
        assert!(b.should_pause(xoff + 1));
        assert!(!b.should_pause(xoff));
        assert!(b.should_resume(xoff / 2 - 1));
        assert!(!b.should_resume(xoff / 2 + 1));
    }

    #[test]
    #[should_panic(expected = "overcommitted")]
    fn overcommit_detected() {
        let mut b = SharedBuffer::new(100, 0.1, 0.5);
        b.charge(101);
    }
}
