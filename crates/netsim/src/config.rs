//! Simulation-wide and per-port configuration.

use crate::ids::DEFAULT_NUM_PRIOS;
use crate::queues::EcnConfig;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Per-port configuration applied when a switch or host port is instantiated.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortConfig {
    /// Number of egress traffic classes.
    pub num_prios: usize,
    /// DWRR weight per class. A weight of 0 means *strict priority*: the
    /// class is always served before any weighted class (higher index wins
    /// among strict classes).
    pub weights: Vec<u32>,
    /// Initial ECN/RED marking configuration per class (`None` = no marking).
    pub ecn: Vec<Option<EcnConfig>>,
    /// Per-class maximum queue depth in bytes (drop-tail bound). PFC should
    /// keep lossless classes well below this.
    pub max_queue_bytes: Vec<u64>,
    /// Initial capacity, in packets, of each port's arena (the slab backing
    /// all of the port's egress queues). The arena grows on demand, but any
    /// growth is a heap allocation on the packet hot path — size this above
    /// the deepest per-port backlog the workload reaches to keep the
    /// steady state allocation-free (`SimCore::max_arena_slots` reports the
    /// high-water mark actually seen).
    #[serde(default = "default_arena_slots")]
    pub arena_slots: usize,
}

/// Serde default for [`PortConfig::arena_slots`] (configs recorded before
/// the field existed deserialize to the same capacity new ones default to).
fn default_arena_slots() -> usize {
    2048
}

impl Default for PortConfig {
    fn default() -> Self {
        // prio 0 = TCP (drop-tail, weight 3), prio 1 = RDMA (ECN + PFC,
        // weight 7), prio 2 = control (strict priority). The lossless RDMA
        // class is bounded by PFC and the shared buffer, not by a per-queue
        // drop-tail cap (a cap below what the dynamic PFC threshold allows
        // to accumulate would silently violate losslessness).
        PortConfig {
            num_prios: DEFAULT_NUM_PRIOS,
            weights: vec![3, 7, 0],
            ecn: vec![None, Some(EcnConfig::dcqcn_paper()), None],
            max_queue_bytes: vec![5 * 1024 * 1024, u64::MAX, 4 * 1024 * 1024],
            arena_slots: default_arena_slots(),
        }
    }
}

impl PortConfig {
    /// A configuration with `num_prios` classes sharing equal weight and no
    /// marking; useful for tests.
    pub fn plain(num_prios: usize) -> Self {
        PortConfig {
            num_prios,
            weights: vec![1; num_prios],
            ecn: vec![None; num_prios],
            max_queue_bytes: vec![10 * 1024 * 1024; num_prios],
            arena_slots: default_arena_slots(),
        }
    }

    /// Set the DWRR weight split between the TCP (prio 0) and RDMA (prio 1)
    /// classes, e.g. `with_tcp_rdma_split(30, 70)`.
    pub fn with_tcp_rdma_split(mut self, tcp: u32, rdma: u32) -> Self {
        self.weights[0] = tcp;
        self.weights[1] = rdma;
        self
    }

    /// Replace the initial ECN config of the RDMA class.
    pub fn with_rdma_ecn(mut self, ecn: Option<EcnConfig>) -> Self {
        self.ecn[1] = ecn;
        self
    }

    /// Replace the initial ECN config of the TCP class (used by DCTCP runs).
    pub fn with_tcp_ecn(mut self, ecn: Option<EcnConfig>) -> Self {
        self.ecn[0] = ecn;
        self
    }

    fn validate(&self) {
        assert!(self.num_prios > 0, "at least one traffic class required");
        assert_eq!(self.weights.len(), self.num_prios);
        assert_eq!(self.ecn.len(), self.num_prios);
        assert_eq!(self.max_queue_bytes.len(), self.num_prios);
    }
}

/// Global simulation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Maximum payload bytes per data packet (RoCE MTU minus headers).
    pub mtu_payload: u32,
    /// Switch shared buffer size in bytes.
    pub buffer_bytes: u64,
    /// Dynamic PFC threshold parameter: Xoff for an ingress (port, prio)
    /// counter fires when it exceeds `pfc_alpha * free_buffer`.
    pub pfc_alpha: f64,
    /// Resume (Xon) once the counter falls below `pfc_xon_frac * Xoff`.
    pub pfc_xon_frac: f64,
    /// Bitmask of lossless traffic classes protected by PFC
    /// (bit `p` set = class `p` is lossless). Default: RDMA + control.
    pub lossless_mask: u8,
    /// Control-plane tick interval for [`crate::control::QueueController`]s;
    /// `None` disables the control plane.
    pub control_interval: Option<SimTime>,
    /// Per-port defaults applied at build time.
    pub port: PortConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            mtu_payload: 1000,
            buffer_bytes: 32 * 1024 * 1024,
            pfc_alpha: 1.0 / 8.0,
            pfc_xon_frac: 0.5,
            lossless_mask: 0b110,
            control_interval: Some(SimTime::from_us(50)),
            port: PortConfig::default(),
        }
    }
}

impl SimConfig {
    /// Validate internal consistency; panics on misconfiguration.
    pub fn validate(&self) {
        assert!(self.mtu_payload > 0, "mtu_payload must be positive");
        assert!(self.buffer_bytes > 0, "buffer must be positive");
        assert!(
            self.pfc_alpha > 0.0 && self.pfc_alpha.is_finite(),
            "pfc_alpha must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.pfc_xon_frac),
            "pfc_xon_frac must be in [0,1]"
        );
        self.port.validate();
    }

    /// Convenience: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: set the control interval (ACC's delta_t).
    pub fn with_control_interval(mut self, dt: SimTime) -> Self {
        self.control_interval = Some(dt);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimConfig::default().validate();
    }

    #[test]
    fn default_port_shape() {
        let p = PortConfig::default();
        assert_eq!(p.num_prios, 3);
        assert_eq!(p.weights[2], 0, "control class is strict priority");
        assert!(p.ecn[1].is_some(), "RDMA class is marked by default");
        assert!(p.ecn[0].is_none());
    }

    #[test]
    #[should_panic(expected = "mtu_payload")]
    fn zero_mtu_rejected() {
        let mut c = SimConfig::default();
        c.mtu_payload = 0;
        c.validate();
    }

    #[test]
    fn builder_helpers() {
        let p = PortConfig::default()
            .with_tcp_rdma_split(30, 70)
            .with_rdma_ecn(None);
        assert_eq!(p.weights[0], 30);
        assert_eq!(p.weights[1], 70);
        assert!(p.ecn[1].is_none());
    }
}
