//! The switch-side extension point: the control plane.
//!
//! Real ACC runs as a module on the switch CPU: every interval `delta_t` it
//! reads telemetry registers from the forwarding chip through the SDK and
//! writes back an ECN template. This module reproduces that contract: the
//! engine invokes a [`QueueController`] per switch on every control tick with
//! a [`SwitchView`] exposing exactly the counters the paper's collector
//! subscribes to (queue depth, tx bytes, ECN-marked tx, current ECN config)
//! plus the ability to rewrite the ECN configuration of any egress queue.

use crate::ids::{NodeId, PortId, Prio};
use crate::queues::{EcnConfig, QueueTelemetry};
use crate::sim::SimCore;
use crate::time::SimTime;
use std::any::Any;

/// A point-in-time reading of one egress queue, with cumulative counters.
///
/// Consumers diff the cumulative fields between ticks; see
/// [`QueueTelemetry`] for field meanings.
#[derive(Clone, Copy, Debug)]
pub struct QueueSnapshot {
    /// Port the queue belongs to.
    pub port: PortId,
    /// Traffic class.
    pub prio: Prio,
    /// Instantaneous queue depth in bytes.
    pub qlen_bytes: u64,
    /// Cumulative counters (synced to `now`).
    pub telem: QueueTelemetry,
    /// Marking configuration currently applied.
    pub ecn: Option<EcnConfig>,
    /// Line rate of the port, bits/s.
    pub link_bps: u64,
}

/// Control-plane logic attached to one switch.
pub trait QueueController: 'static {
    /// Called every control interval with a view of this switch.
    fn on_tick(&mut self, view: &mut SwitchView<'_>);

    /// Downcasting support so harnesses can reach controller-specific state
    /// (e.g. to extract a trained ACC model after a run).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Telemetry-read / config-write window onto one switch during a tick.
pub struct SwitchView<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) node: NodeId,
}

impl SwitchView<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The switch this view belongs to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of ports on this switch.
    pub fn num_ports(&self) -> usize {
        self.core.topo.node(self.node).ports.len()
    }

    /// Number of traffic classes per port.
    pub fn num_prios(&self) -> usize {
        self.core.cfg.port.num_prios
    }

    /// Line rate of `port` in bits/s.
    pub fn port_rate_bps(&self, port: PortId) -> u64 {
        self.core.topo.port(self.node, port).rate_bps
    }

    /// True if `port` faces an end host (vs. another switch).
    pub fn port_is_host_facing(&self, port: PortId) -> bool {
        let peer = self.core.topo.port(self.node, port).peer_node;
        self.core.topo.is_host(peer)
    }

    /// Read one egress queue (syncing its time-average integral to `now`).
    ///
    /// This models the SDK register read a switch-CPU agent performs, so it
    /// is subject to injected telemetry faults
    /// ([`crate::fault::FaultKind::TelemetryFreeze`] /
    /// [`crate::fault::FaultKind::TelemetryBlank`]): while one is active the
    /// returned depth and counters are frozen or zeroed. The applied ECN
    /// config and the link rate stay truthful — the agent wrote the config
    /// itself and safe-mode logic must see what is really installed.
    pub fn snapshot(&mut self, port: PortId, prio: Prio) -> QueueSnapshot {
        let link_bps = self.port_rate_bps(port);
        let faulted = self.core.faulted_reading(self.node, port, prio);
        let live = self.core.synced_queue_telem(self.node, port, prio);
        let q = self.core.queue(self.node, port, prio);
        let (qlen_bytes, telem) = match faulted {
            Some(v) => v,
            None => (q.bytes(), live),
        };
        QueueSnapshot {
            port,
            prio,
            qlen_bytes,
            telem,
            ecn: q.ecn,
            link_bps,
        }
    }

    /// Rewrite the ECN marking configuration of one egress queue — the
    /// "configurator maps the action into the ECN template" step of ACC.
    pub fn set_ecn(&mut self, port: PortId, prio: Prio, cfg: Option<EcnConfig>) {
        self.core.queue_mut(self.node, port, prio).ecn = cfg;
    }

    /// Cumulative count of PFC PAUSE events this switch has sent upstream.
    pub fn pfc_pauses_sent(&self) -> u64 {
        self.core.pfc_pauses_of(self.node)
    }

    /// True when the engine's self-profiler is on. Controllers that want
    /// per-phase spans check this once per tick, so the disabled path costs
    /// a single branch and no clock reads.
    #[inline]
    pub fn profiling_enabled(&self) -> bool {
        self.core.prof.is_some()
    }

    /// Record a wall-clock span (category `control`) started at `start` —
    /// e.g. one phase of a controller tick. No-op when profiling is off;
    /// pair with [`SwitchView::profiling_enabled`] to skip the clock read.
    pub fn profile_span(&mut self, name: &'static str, start: std::time::Instant) {
        if let Some(p) = self.core.prof.as_mut() {
            let sw = self.node.0;
            p.span(name, "control", start, format!("sw={sw}"));
        }
    }
}
