//! The simulation engine: node state, the packet forwarding path (with
//! ECN marking, shared-buffer accounting and PFC), and the event loop.

use crate::buffer::SharedBuffer;
use crate::config::SimConfig;
use crate::control::{QueueController, SwitchView};
use crate::driver::{HostCtx, NicDriver};
use crate::event::{Event, EventQueue};
use crate::fault::{FaultDetail, FaultKind, FaultLogEntry, FaultPlan, FaultPlanError, TelemFault};
use crate::ids::{NodeId, PortId, Prio};
use crate::packet::Packet;
use crate::profile::{event_kind, SimProfiler};
use crate::queues::{Dwrr, EgressQueue, PortTelemetry, QItem, QueueArena, QueueTelemetry};
use crate::routing::RouteTable;
use crate::shard::{
    control_tick_key, fault_event_key, mix64, node_event_key, telemetry_sample_key, RemoteEvent,
    ShardPlan, RANK_ARRIVE, RANK_PFC, RANK_TIMER, RANK_TXDONE,
};
use crate::time::{tx_time, SimTime};
use crate::topology::Topology;
use crate::trace::{TraceEvent, TraceKind, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// On-wire size of a PFC pause frame (only used for its serialization delay).
const PFC_FRAME_BYTES: u64 = 64;

/// Salt XORed into the fault-plan seed so the fault RNG stream never aliases
/// the engine RNG even when both are seeded with the same number.
const FAULT_SEED_SALT: u64 = 0xFA17_0B5E_55ED_0001;

/// Defensive cap on buffered fault-log entries between drains.
const FAULT_LOG_CAP: usize = 1 << 16;

/// The packet currently being serialized by a port's transmitter.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    size: u32,
    /// Ingress port the bytes were charged to (switches only).
    ingress: Option<PortId>,
    prio: Prio,
}

/// Mutable state of one port.
pub(crate) struct PortState {
    /// Transmitter busy serializing.
    tx_busy: bool,
    /// Bitmask of classes paused by PFC frames we *received*.
    paused: u8,
    /// Bitmask of classes for which we have *sent* PAUSE upstream (ingress
    /// side of this port) and not yet resumed.
    pfc_sent: u8,
    /// Ingress byte counters per class: bytes buffered in this switch that
    /// arrived through this port.
    ingress_bytes: Vec<u64>,
    /// Egress FIFOs, one per class.
    queues: Vec<EgressQueue>,
    /// Cache-line-aligned SoA telemetry counters for every class of this
    /// port (see [`PortTelemetry`]): one block per port means shard threads
    /// never write counters on a cache line another shard reads.
    telem: PortTelemetry,
    /// Slab backing every class's FIFO on this port (intrusive links; see
    /// [`QueueArena`]) — enqueue/dequeue never allocates at steady state.
    arena: QueueArena,
    /// Egress scheduler.
    dwrr: Dwrr,
    in_flight: Option<InFlight>,
    /// PAUSE events sent from the ingress side of this port.
    pfc_pause_events: u64,
    /// Cumulative time each class of this port's transmitter has spent
    /// paused by received PFC frames, in picoseconds.
    pause_ps: Vec<u64>,
    /// When the currently active pause of each class began (None = not
    /// paused); lets `pause_ps` include the in-progress pause on read.
    pause_since: Vec<Option<SimTime>>,
    /// Administrative/physical link state (fault injection).
    link_up: bool,
    /// Degraded serialization rate in bits/s (fault injection); `None`
    /// means the topology-configured rate applies.
    rate_override: Option<u64>,
    /// Fraction of arrivals on this port black-holed (fault injection).
    loss_frac: f64,
}

impl PortState {
    fn new(cfg: &SimConfig, arena_slots: usize) -> Self {
        let pc = &cfg.port;
        let queues = (0..pc.num_prios)
            .map(|p| EgressQueue::new(p, pc.max_queue_bytes[p], pc.ecn[p]))
            .collect();
        PortState {
            tx_busy: false,
            paused: 0,
            pfc_sent: 0,
            ingress_bytes: vec![0; pc.num_prios],
            queues,
            telem: PortTelemetry::new(),
            arena: QueueArena::with_capacity(arena_slots),
            dwrr: Dwrr::new(pc.weights.clone()),
            in_flight: None,
            pfc_pause_events: 0,
            pause_ps: vec![0; pc.num_prios],
            pause_since: vec![None; pc.num_prios],
            link_up: true,
            rate_override: None,
            loss_frac: 0.0,
        }
    }
}

/// Mutable state of one node.
pub(crate) struct NodeState {
    ports: Vec<PortState>,
    /// Shared packet buffer — switches only.
    buffer: Option<SharedBuffer>,
    /// Active telemetry-read distortion (fault injection).
    telem_fault: Option<TelemFault>,
}

/// Sharded-mode state attached to a [`SimCore`] (see [`crate::shard`]):
/// ownership map, staged cross-shard events, and the per-node RNG streams
/// that make a node's random draws independent of its thread placement.
pub(crate) struct ShardCtx {
    my_shard: u32,
    n_shards: u32,
    owner_of: Vec<u32>,
    /// Outbound cross-shard events staged per destination shard; drained by
    /// the run loop after each processing slice ([`SimCore::drain_outbox_into`]).
    outboxes: Vec<Vec<RemoteEvent>>,
    /// Per-host sequence numbers disambiguating simultaneous host timers in
    /// the canonical event key (two timers may share (host, token, time)).
    timer_seq: Vec<u64>,
    /// Per-node engine RNG streams (ECN marking draws, driver randomness).
    node_rngs: Vec<SmallRng>,
    /// Per-node fault RNG streams (probabilistic packet-loss draws).
    node_fault_rngs: Vec<SmallRng>,
    /// Monotone index over scheduled faults — identical in every shard
    /// because fault plans install in the same order everywhere.
    next_fault_key: u64,
    sent: u64,
    received: u64,
}

impl ShardCtx {
    #[inline]
    fn owns(&self, node: NodeId) -> bool {
        self.owner_of[node.idx()] == self.my_shard
    }
}

/// Everything the engine owns except the pluggable drivers/controllers.
///
/// Split out so that [`HostCtx`] / [`SwitchView`] can borrow the core while a
/// driver or controller (stored separately in [`Simulator`]) runs.
pub struct SimCore {
    /// Global configuration.
    pub cfg: SimConfig,
    pub(crate) now: SimTime,
    pub(crate) events: EventQueue,
    /// The immutable network.
    pub topo: Topology,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) routes: RouteTable,
    pub(crate) rng: SmallRng,
    /// Total packets dropped anywhere in the fabric.
    pub total_drops: u64,
    /// Drops on PFC-protected classes — should stay 0; nonzero means the
    /// buffer/PFC configuration cannot guarantee losslessness.
    pub lossless_drops: u64,
    /// Packets dropped because no route existed (after link failures).
    pub unroutable_drops: u64,
    /// Packets lost to fault injection: arrivals at a downed link, injected
    /// packet loss, and queue flushes from switch reboots (also counted in
    /// `total_drops`).
    pub fault_drops: u64,
    /// Total PFC PAUSE events sent by all switches.
    pub total_pfc_pauses: u64,
    /// Total events processed (for performance reporting).
    pub events_processed: u64,
    /// Optional structured event tracer (see [`crate::trace`]).
    pub tracer: Option<Tracer>,
    /// Dedicated RNG for probabilistic faults; reseeded from
    /// [`FaultPlan::seed`] when a plan is installed so the packet-path RNG
    /// stream is untouched by fault injection.
    pub(crate) fault_rng: SmallRng,
    /// Executed faults awaiting collection by [`SimCore::drain_fault_log`].
    fault_log: Vec<FaultLogEntry>,
    /// Entries discarded because the log hit [`FAULT_LOG_CAP`] between
    /// drains. Surfaced in run manifests so a soak run that outpaces its
    /// sampler is visible rather than silently lossy.
    pub fault_log_dropped: u64,
    /// Cumulative count of faults executed, independent of the (drainable,
    /// capped) fault log — the number a long soak reports at the end.
    pub faults_executed: u64,
    /// Self-profiler (see [`crate::profile`]). `None` (the default) costs
    /// one pointer check per dispatch; enabled it observes wall-clock time
    /// and counters only, never the simulated trajectory.
    pub(crate) prof: Option<Box<SimProfiler>>,
    /// Reused scratch for reboot queue flushes (grows to the deepest flush
    /// ever seen, then reboots stop allocating).
    flush_scratch: Vec<QItem>,
    /// Reused scratch for the PFC resumes a reboot sends upstream.
    resume_scratch: Vec<(PortId, Prio)>,
    /// Recycled telemetry-freeze snapshot storage: when a freeze ends, its
    /// buffer parks here so the next freeze reuses the capacity.
    telem_snap_pool: Vec<(u64, QueueTelemetry)>,
    /// Sharded-mode context; `None` on the classic single-threaded path,
    /// which keeps its original shared-RNG, sequence-numbered behaviour
    /// (existing seeded baselines stay byte-stable).
    pub(crate) shard: Option<Box<ShardCtx>>,
}

impl SimCore {
    fn new(topo: Topology, cfg: SimConfig) -> Self {
        Self::new_inner(topo, cfg, None)
    }

    fn new_inner(topo: Topology, cfg: SimConfig, shard_init: Option<(&ShardPlan, u32)>) -> Self {
        cfg.validate();
        assert!(
            cfg.port.num_prios <= 8,
            "at most 8 traffic classes (PFC bitmask)"
        );
        let shard = shard_init.map(|(plan, me)| {
            let n_nodes = topo.nodes.len();
            Box::new(ShardCtx {
                my_shard: me,
                n_shards: plan.n_shards,
                owner_of: plan.owner_of.clone(),
                outboxes: (0..plan.n_shards)
                    .map(|_| Vec::with_capacity(crate::shard::remote_buf_capacity(n_nodes)))
                    .collect(),
                timer_seq: vec![0; n_nodes],
                node_rngs: (0..n_nodes)
                    .map(|i| SmallRng::seed_from_u64(mix64(cfg.seed) ^ mix64(i as u64)))
                    .collect(),
                node_fault_rngs: (0..n_nodes)
                    .map(|i| {
                        SmallRng::seed_from_u64(mix64(cfg.seed ^ FAULT_SEED_SALT) ^ mix64(i as u64))
                    })
                    .collect(),
                next_fault_key: 0,
                sent: 0,
                received: 0,
            })
        });
        let nodes = topo
            .nodes
            .iter()
            .enumerate()
            .map(|(ni, n)| {
                // Foreign nodes never enqueue packets in this shard (their
                // events route to their owner), so their packet arenas get
                // zero capacity — at 1024 hosts the replicated topology
                // would otherwise cost hundreds of MB per shard.
                let arena_slots = match shard.as_ref() {
                    Some(sc) if !sc.owns(NodeId(ni as u32)) => 0,
                    _ => cfg.port.arena_slots,
                };
                let ports = n
                    .ports
                    .iter()
                    .map(|_| PortState::new(&cfg, arena_slots))
                    .collect();
                let buffer = match n.kind {
                    crate::topology::NodeKind::Switch => Some(SharedBuffer::new(
                        cfg.buffer_bytes,
                        cfg.pfc_alpha,
                        cfg.pfc_xon_frac,
                    )),
                    crate::topology::NodeKind::Host => None,
                };
                NodeState {
                    ports,
                    buffer,
                    telem_fault: None,
                }
            })
            .collect();
        let routes = RouteTable::build(&topo);
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let fault_rng = SmallRng::seed_from_u64(cfg.seed ^ FAULT_SEED_SALT);
        // Fault-path scratch buffers are sized from the topology up front so
        // the *first* reboot or telemetry freeze after warmup doesn't grow
        // them (growth on first use would show up as a steady-state alloc).
        let max_ports = topo.nodes.iter().map(|n| n.ports.len()).max().unwrap_or(0);
        let snap_cap = max_ports * cfg.port.num_prios;
        let flush_cap = cfg.port.arena_slots;
        SimCore {
            cfg,
            now: SimTime::ZERO,
            // Like the scratch buffers above, the event queue is pre-sized
            // from the topology: per-bucket burst size scales with ports.
            events: EventQueue::sized_for(topo.nodes.len()),
            topo,
            nodes,
            routes,
            rng,
            total_drops: 0,
            lossless_drops: 0,
            unroutable_drops: 0,
            fault_drops: 0,
            total_pfc_pauses: 0,
            events_processed: 0,
            tracer: None,
            fault_rng,
            fault_log: Vec::new(),
            fault_log_dropped: 0,
            faults_executed: 0,
            prof: None,
            flush_scratch: Vec::with_capacity(flush_cap),
            resume_scratch: Vec::with_capacity(snap_cap),
            telem_snap_pool: Vec::with_capacity(snap_cap),
            shard,
        }
    }

    #[inline]
    fn trace(
        &mut self,
        kind: TraceKind,
        node: NodeId,
        port: PortId,
        prio: Prio,
        flow: crate::ids::FlowId,
        qlen: u64,
    ) {
        if let Some(t) = self.tracer.as_mut() {
            // Sharded runs replicate fault events into every shard; only the
            // owner of the node involved records the trace, so the merged
            // per-shard streams are disjoint and partition-invariant.
            if let Some(sc) = self.shard.as_ref() {
                if !sc.owns(node) {
                    return;
                }
            }
            t.record(TraceEvent {
                at: self.now,
                kind,
                node,
                port,
                prio,
                flow,
                qlen_bytes: qlen,
            });
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn schedule(&mut self, at: SimTime, ev: Event) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let Some(sc) = self.shard.as_mut() else {
            self.events.push(at, ev);
            return;
        };
        // Sharded mode: every event gets a canonical content-derived key so
        // simultaneous events pop in a partition-invariant order, and events
        // addressed to foreign nodes divert to the owner's mailbox. Only
        // `Arrive` and `PfcUpdate` can target foreign nodes — `TxDone` is
        // scheduled by the owner of the transmitting port and `HostTimer`
        // by the owner of the host.
        let (key, target) = match &ev {
            Event::Arrive { node, port, .. } => (
                node_event_key(*node, RANK_ARRIVE, port.0 as u64),
                Some(*node),
            ),
            Event::PfcUpdate {
                node,
                port,
                prio,
                pause,
            } => (
                node_event_key(
                    *node,
                    RANK_PFC,
                    ((port.0 as u64) << 9) | ((*prio as u64) << 1) | *pause as u64,
                ),
                Some(*node),
            ),
            Event::TxDone { node, port } => {
                debug_assert!(sc.owns(*node), "TxDone scheduled for a foreign node");
                (node_event_key(*node, RANK_TXDONE, port.0 as u64), None)
            }
            Event::HostTimer { host, .. } => {
                debug_assert!(sc.owns(*host), "HostTimer scheduled for a foreign host");
                let seq = sc.timer_seq[host.idx()];
                sc.timer_seq[host.idx()] = seq.wrapping_add(1);
                (node_event_key(*host, RANK_TIMER, seq), None)
            }
            Event::ControlTick => (control_tick_key(), None),
            Event::TelemetrySample => (telemetry_sample_key(), None),
            Event::Fault(_) => {
                let k = fault_event_key(sc.next_fault_key);
                sc.next_fault_key += 1;
                (k, None)
            }
        };
        if let Some(node) = target {
            let owner = sc.owner_of[node.idx()];
            if owner != sc.my_shard {
                sc.sent += 1;
                sc.outboxes[owner as usize].push(RemoteEvent { at, key, event: ev });
                return;
            }
        }
        self.events.push_keyed(at, key, ev);
    }

    /// Insert a cross-shard event received from a peer shard (the conservative
    /// bound in [`crate::shard::run_sharded`] guarantees it is not in this
    /// shard's past).
    pub fn inject_remote(&mut self, ev: RemoteEvent) {
        debug_assert!(
            ev.at >= self.now,
            "remote event arrived in this shard's past"
        );
        if let Some(sc) = self.shard.as_mut() {
            sc.received += 1;
        }
        self.events.push_keyed(ev.at, ev.key, ev.event);
    }

    /// Move every staged outbound event for `shard` into `out` (appends;
    /// both vectors keep their capacity, so a steady-state exchange does not
    /// allocate). No-op on an unsharded core.
    pub fn drain_outbox_into(&mut self, shard: u32, out: &mut Vec<RemoteEvent>) {
        if let Some(sc) = self.shard.as_mut() {
            out.append(&mut sc.outboxes[shard as usize]);
        }
    }

    /// Cross-shard (sent, received) event counts of this shard; (0, 0) on an
    /// unsharded core.
    pub fn shard_comm_counters(&self) -> (u64, u64) {
        self.shard
            .as_ref()
            .map(|sc| (sc.sent, sc.received))
            .unwrap_or((0, 0))
    }

    /// Whether this core owns `node` (always true on an unsharded core).
    /// Telemetry samplers and harness readbacks use this to emit each node's
    /// data from exactly one shard.
    pub fn owns_node(&self, node: NodeId) -> bool {
        self.shard.as_ref().map(|sc| sc.owns(node)).unwrap_or(true)
    }

    /// The RNG a node's driver draws from: the node's own stream in sharded
    /// mode (placement-independent), the shared engine RNG otherwise.
    pub(crate) fn node_rng(&mut self, node: NodeId) -> &mut SmallRng {
        match self.shard.as_mut() {
            Some(sc) => &mut sc.node_rngs[node.idx()],
            None => &mut self.rng,
        }
    }

    pub(crate) fn schedule_host_timer(&mut self, at: SimTime, host: NodeId, token: u64) {
        let at = at.max(self.now);
        self.schedule(at, Event::HostTimer { host, token });
    }

    /// Highest number of simultaneously pending events observed so far —
    /// the event queue's high-water mark, exported into run manifests and
    /// the `acc-bench perf` report.
    pub fn event_queue_peak(&self) -> u64 {
        self.events.peak_len() as u64
    }

    /// Timing-wheel push-tier and migration counters for this run's event
    /// queue — exported by the self-profiler into `acc-bench` profile
    /// artifacts.
    pub fn event_queue_stats(&self) -> crate::event::QueueStats {
        self.events.stats()
    }

    /// Largest per-port packet-arena ever grown in this run, in slots — the
    /// packet path's high-water mark (arenas never shrink, so the current
    /// maximum is the historical one). Diagnostic for sizing
    /// [`crate::config::PortConfig::arena_slots`].
    pub fn max_arena_slots(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.ports.iter())
            .map(|p| p.arena.slot_count())
            .max()
            .unwrap_or(0)
    }

    /// Mutable access to an egress queue (telemetry sync / reconfiguration
    /// from harness code).
    pub fn queue_mut(&mut self, node: NodeId, port: PortId, prio: Prio) -> &mut EgressQueue {
        &mut self.nodes[node.idx()].ports[port.idx()].queues[prio as usize]
    }

    /// Read-only access to an egress queue (harness/telemetry use).
    pub fn queue(&self, node: NodeId, port: PortId, prio: Prio) -> &EgressQueue {
        &self.nodes[node.idx()].ports[port.idx()].queues[prio as usize]
    }

    /// The SoA telemetry block of one port (see [`PortTelemetry`]).
    pub fn port_telemetry(&self, node: NodeId, port: PortId) -> &PortTelemetry {
        &self.nodes[node.idx()].ports[port.idx()].telem
    }

    /// Assembled per-queue telemetry view of (`node`, `port`, `prio`).
    /// The queue-length time integral is only current up to the queue's
    /// last push/pop; use [`Self::synced_queue_telem`] when reading it.
    pub fn queue_telem(&self, node: NodeId, port: PortId, prio: Prio) -> QueueTelemetry {
        self.nodes[node.idx()].ports[port.idx()]
            .telem
            .queue(prio as usize)
    }

    /// Bring one queue's time-integral up to the current simulated time and
    /// return the assembled telemetry view.
    pub fn synced_queue_telem(&mut self, node: NodeId, port: PortId, prio: Prio) -> QueueTelemetry {
        let now = self.now;
        let ps = &mut self.nodes[node.idx()].ports[port.idx()];
        ps.queues[prio as usize].sync_clock(&mut ps.telem, now);
        ps.telem.queue(prio as usize)
    }

    pub(crate) fn pfc_pauses_of(&self, node: NodeId) -> u64 {
        self.nodes[node.idx()]
            .ports
            .iter()
            .map(|p| p.pfc_pause_events)
            .sum()
    }

    /// PFC PAUSE events sent upstream from the ingress side of one port.
    pub fn pfc_pauses_of_port(&self, node: NodeId, port: PortId) -> u64 {
        self.nodes[node.idx()].ports[port.idx()].pfc_pause_events
    }

    /// Cumulative time class `prio` of (`node`, `port`)'s transmitter has
    /// spent paused by received PFC frames, including any pause still in
    /// progress at the current simulated time.
    pub fn pfc_pause_time(&self, node: NodeId, port: PortId, prio: Prio) -> SimTime {
        let ps = &self.nodes[node.idx()].ports[port.idx()];
        let mut total = ps.pause_ps[prio as usize];
        if let Some(since) = ps.pause_since[prio as usize] {
            total += (self.now - since).as_ps();
        }
        SimTime::from_ps(total)
    }

    pub(crate) fn host_backlog(&self, host: NodeId, prio: Prio) -> u64 {
        self.nodes[host.idx()].ports[0].queues[prio as usize].bytes()
    }

    /// Enqueue a host-originated packet on the host's NIC and kick the
    /// transmitter.
    pub(crate) fn host_enqueue(&mut self, host: NodeId, pkt: Packet) {
        debug_assert!(self.topo.is_host(host));
        debug_assert!((pkt.prio as usize) < self.cfg.port.num_prios);
        let now = self.now;
        let ps = &mut self.nodes[host.idx()].ports[0];
        // Host NICs have effectively unbounded send memory (the transport's
        // windows/rate limits bound it in practice); no drop here.
        ps.queues[pkt.prio as usize].push(
            &mut ps.arena,
            &mut ps.telem,
            QItem { pkt, ingress: None },
            now,
        );
        self.try_send(host, PortId(0));
    }

    /// If the transmitter of (node, port) is idle, pick the next packet by
    /// DWRR (honouring PFC pause) and start serializing it.
    fn try_send(&mut self, node: NodeId, port: PortId) {
        let ps = &mut self.nodes[node.idx()].ports[port.idx()];
        if ps.tx_busy || !ps.link_up {
            return;
        }
        let n = ps.queues.len();
        let mut heads = [None; 8];
        for (i, q) in ps.queues.iter().enumerate() {
            heads[i] = q.head_size(&ps.arena);
        }
        let Some(prio) = ps.dwrr.pick(&heads[..n], ps.paused) else {
            return;
        };
        let now = self.now;
        let item = ps.queues[prio]
            .pop(&mut ps.arena, &mut ps.telem, now)
            .expect("dwrr picked an empty queue");
        ps.in_flight = Some(InFlight {
            size: item.pkt.size,
            ingress: item.ingress,
            prio: item.pkt.prio,
        });
        ps.tx_busy = true;
        let qlen = ps.queues[prio].bytes();
        let (t_flow, t_prio) = (item.pkt.flow, item.pkt.prio);
        self.trace(TraceKind::Dequeue, node, port, t_prio, t_flow, qlen);
        let info = *self.topo.port(node, port);
        let ser = tx_time(item.pkt.size as u64, self.port_rate(node, port));
        self.schedule(now + ser, Event::TxDone { node, port });
        self.schedule(
            now + ser + info.delay,
            Event::Arrive {
                node: info.peer_node,
                port: info.peer_port,
                pkt: item.pkt,
            },
        );
    }

    /// Transmitter finished: release buffer accounting, maybe send PFC
    /// RESUME, and start the next packet.
    fn on_tx_done(&mut self, node: NodeId, port: PortId) {
        let inflight = self.nodes[node.idx()].ports[port.idx()]
            .in_flight
            .take()
            .expect("TxDone without in-flight packet");
        self.nodes[node.idx()].ports[port.idx()].tx_busy = false;

        if let Some(ingress) = inflight.ingress {
            // Switch: give the bytes back to the shared pool and the ingress
            // counter, then re-evaluate the PFC state of that ingress.
            let st = &mut self.nodes[node.idx()];
            if let Some(buf) = st.buffer.as_mut() {
                buf.release(inflight.size);
            }
            let prio = inflight.prio as usize;
            let ip = &mut st.ports[ingress.idx()];
            debug_assert!(ip.ingress_bytes[prio] >= inflight.size as u64);
            ip.ingress_bytes[prio] -= inflight.size as u64;
            let bit = 1u8 << (inflight.prio & 7);
            if ip.pfc_sent & bit != 0 {
                let resume = st
                    .buffer
                    .as_ref()
                    .map(|b| b.should_resume(st.ports[ingress.idx()].ingress_bytes[prio]))
                    .unwrap_or(true);
                if resume {
                    self.nodes[node.idx()].ports[ingress.idx()].pfc_sent &= !bit;
                    self.send_pfc(node, ingress, inflight.prio, false);
                }
            }
        }
        self.try_send(node, port);
    }

    /// Effective serialization rate of (`node`, `port`): the fault-injected
    /// override when present, the topology-configured rate otherwise.
    #[inline]
    fn port_rate(&self, node: NodeId, port: PortId) -> u64 {
        self.nodes[node.idx()].ports[port.idx()]
            .rate_override
            .unwrap_or_else(|| self.topo.port(node, port).rate_bps)
    }

    /// Deliver a PFC pause/resume to the peer of `ingress` on `node`.
    fn send_pfc(&mut self, node: NodeId, ingress: PortId, prio: Prio, pause: bool) {
        let info = *self.topo.port(node, ingress);
        let delay = tx_time(PFC_FRAME_BYTES, self.port_rate(node, ingress)) + info.delay;
        let at = self.now + delay;
        self.schedule(
            at,
            Event::PfcUpdate {
                node: info.peer_node,
                port: info.peer_port,
                prio,
                pause,
            },
        );
        if pause {
            self.nodes[node.idx()].ports[ingress.idx()].pfc_pause_events += 1;
            self.total_pfc_pauses += 1;
        }
        let kind = if pause {
            TraceKind::PfcPause
        } else {
            TraceKind::PfcResume
        };
        let qlen = self.nodes[node.idx()].ports[ingress.idx()].ingress_bytes[prio as usize];
        self.trace(kind, node, ingress, prio, crate::ids::FlowId(0), qlen);
    }

    fn on_pfc_update(&mut self, node: NodeId, port: PortId, prio: Prio, pause: bool) {
        let bit = 1u8 << (prio & 7);
        let now = self.now;
        let ps = &mut self.nodes[node.idx()].ports[port.idx()];
        if !ps.link_up {
            // A pause landing on a downed port would stick forever: the
            // sender's pfc_sent state was cleared when the link failed, so
            // no resume would ever arrive. Drop it with the link.
            return;
        }
        if pause {
            if ps.paused & bit == 0 {
                ps.pause_since[prio as usize] = Some(now);
            }
            ps.paused |= bit;
        } else {
            if let Some(since) = ps.pause_since[prio as usize].take() {
                let dur = (now - since).as_ps();
                ps.pause_ps[prio as usize] += dur;
                if let Some(p) = self.prof.as_mut() {
                    p.pause(dur / 1000);
                }
            }
            ps.paused &= !bit;
            self.try_send(node, port);
        }
    }

    /// The switch forwarding path: route, admission control, RED/ECN
    /// marking, shared-buffer + PFC accounting, enqueue.
    fn switch_rx(&mut self, node: NodeId, in_port: PortId, mut pkt: Packet) {
        let Some(out_port) = self.routes.try_next_hop(node, pkt.dst, pkt.flow) else {
            // Destination unreachable (link failures): black-hole, counted.
            self.total_drops += 1;
            self.unroutable_drops += 1;
            return;
        };
        let prio = pkt.prio as usize;
        let now = self.now;

        // Admission: per-queue drop-tail bound and shared-buffer capacity.
        let st = &self.nodes[node.idx()];
        let q = &st.ports[out_port.idx()].queues[prio];
        let buffer_full = st
            .buffer
            .as_ref()
            .map(|b| !b.can_admit(pkt.size))
            .unwrap_or(false);
        if q.would_overflow(pkt.size) || buffer_full {
            self.total_drops += 1;
            if self.cfg.lossless_mask & (1u8 << (pkt.prio & 7)) != 0 {
                self.lossless_drops += 1;
            }
            let qlen = q.bytes();
            {
                let ps = &mut self.nodes[node.idx()].ports[out_port.idx()];
                ps.queues[prio].record_drop(&mut ps.telem);
            }
            self.trace(TraceKind::Drop, node, out_port, pkt.prio, pkt.flow, qlen);
            if let Some(p) = self.prof.as_mut() {
                p.drop_at(qlen);
            }
            return;
        }

        // RED/ECN marking against the instantaneous egress queue depth.
        if pkt.ecn.markable() {
            let q = &self.nodes[node.idx()].ports[out_port.idx()].queues[prio];
            let ecn_at = q.ecn.map(|cfg| (cfg, q.marking_qlen()));
            if let Some((cfg, qlen)) = ecn_at {
                let p = cfg.mark_probability(qlen);
                // Sharded runs draw from the switch's own RNG stream so the
                // marking trajectory is independent of thread placement.
                let marked = p >= 1.0
                    || (p > 0.0
                        && match self.shard.as_mut() {
                            Some(sc) => sc.node_rngs[node.idx()].gen::<f64>() < p,
                            None => self.rng.gen::<f64>() < p,
                        });
                if marked {
                    pkt.ecn = crate::packet::Ecn::Ce;
                    self.trace(TraceKind::CeMark, node, out_port, pkt.prio, pkt.flow, qlen);
                    if let Some(prof) = self.prof.as_mut() {
                        prof.ecn_mark(qlen);
                    }
                }
            }
        }

        // Charge the shared buffer and the ingress counter; evaluate Xoff.
        let st = &mut self.nodes[node.idx()];
        if let Some(buf) = st.buffer.as_mut() {
            buf.charge(pkt.size);
            let ip = &mut st.ports[in_port.idx()];
            ip.ingress_bytes[prio] += pkt.size as u64;
            let bit = 1u8 << (pkt.prio & 7);
            let lossless = self.cfg.lossless_mask & bit != 0;
            if lossless && ip.pfc_sent & bit == 0 {
                let over = st
                    .buffer
                    .as_ref()
                    .map(|b| b.should_pause(st.ports[in_port.idx()].ingress_bytes[prio]))
                    .unwrap_or(false);
                if over {
                    self.nodes[node.idx()].ports[in_port.idx()].pfc_sent |= bit;
                    self.send_pfc(node, in_port, pkt.prio, true);
                }
            }
        }

        let ps = &mut self.nodes[node.idx()].ports[out_port.idx()];
        let q = &mut ps.queues[prio];
        q.push(
            &mut ps.arena,
            &mut ps.telem,
            QItem {
                pkt,
                ingress: Some(in_port),
            },
            now,
        );
        let qlen = q.bytes();
        self.trace(TraceKind::Enqueue, node, out_port, pkt.prio, pkt.flow, qlen);
        self.try_send(node, out_port);
    }

    /// Finalize pause accounting and clear all PFC state on one port
    /// (link failure / reboot). Clearing `pfc_sent` matters: after the
    /// peer's pause state is gone, a resume would never be sent, so leaving
    /// the bit set would wedge the handshake after restoration.
    fn clear_pfc_state(&mut self, node: NodeId, port: PortId) {
        let now = self.now;
        let ps = &mut self.nodes[node.idx()].ports[port.idx()];
        for prio in 0..ps.pause_since.len() {
            if let Some(since) = ps.pause_since[prio].take() {
                let dur = (now - since).as_ps();
                ps.pause_ps[prio] += dur;
                if let Some(p) = self.prof.as_mut() {
                    p.pause(dur / 1000);
                }
            }
        }
        ps.paused = 0;
        ps.pfc_sent = 0;
    }

    /// Administratively fail or restore the link attached to
    /// (`node`, `port`). Both directions go down (the peer port too); the
    /// route table is rebuilt to steer around the failure. Packets already
    /// queued behind a downed transmitter wait for restoration; packets
    /// already propagating toward a downed link are lost on arrival (see
    /// `fault_drops`); packets with no remaining route are dropped (see
    /// `unroutable_drops`). PFC pause state on both endpoints is cleared so
    /// a flap can never leave a port permanently paused.
    pub fn set_link_state(&mut self, node: NodeId, port: PortId, up: bool) {
        let peer = *self.topo.port(node, port);
        self.nodes[node.idx()].ports[port.idx()].link_up = up;
        self.nodes[peer.peer_node.idx()].ports[peer.peer_port.idx()].link_up = up;
        if !up {
            self.clear_pfc_state(node, port);
            self.clear_pfc_state(peer.peer_node, peer.peer_port);
        }
        if let Some(p) = self.prof.as_mut() {
            // One window per administrative endpoint; the trace span covers
            // down → restore.
            let key = (node.0 as u64) << 32 | port.0 as u64;
            if up {
                p.close_window(key);
            } else {
                let sim_us = self.now.as_us_f64();
                p.open_window(key, format!("sw{}:{} sim_us={sim_us:.1}", node.0, port.0));
            }
        }
        self.log_fault(
            if up { "link_up" } else { "link_down" },
            node,
            port,
            FaultDetail::Peer {
                node: peer.peer_node,
                port: peer.peer_port,
            },
        );
        let kind = if up {
            TraceKind::LinkUp
        } else {
            TraceKind::LinkDown
        };
        // One record per endpoint, so per-node trace filters see the change.
        self.trace(kind, node, port, 0, crate::ids::FlowId(0), 0);
        self.trace(
            kind,
            peer.peer_node,
            peer.peer_port,
            0,
            crate::ids::FlowId(0),
            0,
        );
        // Rebuild routing honouring every port's current state, reusing the
        // existing table's storage (no fresh table allocation per flap).
        {
            let SimCore {
                ref mut routes,
                ref nodes,
                ref topo,
                ..
            } = *self;
            routes.rebuild_filtered(topo, |n, p| nodes[n.idx()].ports[p.idx()].link_up);
        }
        if up {
            // Restart the transmitters on both ends.
            self.try_send(node, port);
            self.try_send(peer.peer_node, peer.peer_port);
        }
    }

    /// Whether the link attached to (`node`, `port`) is up.
    pub fn link_is_up(&self, node: NodeId, port: PortId) -> bool {
        self.nodes[node.idx()].ports[port.idx()].link_up
    }

    /// Total bytes currently buffered in a switch.
    pub fn buffer_used(&self, node: NodeId) -> u64 {
        self.nodes[node.idx()]
            .buffer
            .as_ref()
            .map(|b| b.used)
            .unwrap_or(0)
    }

    /// Append one executed fault to the in-core fault log.
    fn log_fault(&mut self, kind: &'static str, node: NodeId, port: PortId, detail: FaultDetail) {
        // Faults replicate into every shard (link state and routing must stay
        // globally consistent) but only the owner logs and counts them, so
        // merged fault streams carry each fault exactly once.
        if let Some(sc) = self.shard.as_ref() {
            if !sc.owns(node) {
                return;
            }
        }
        self.faults_executed += 1;
        if self.fault_log.len() >= FAULT_LOG_CAP {
            self.fault_log_dropped += 1;
        } else {
            self.fault_log.push(FaultLogEntry {
                at: self.now,
                kind,
                node,
                port,
                detail,
            });
        }
    }

    /// Take every fault executed since the previous drain (telemetry
    /// samplers call this each interval; harnesses may drain at the end).
    pub fn drain_fault_log(&mut self) -> Vec<FaultLogEntry> {
        std::mem::take(&mut self.fault_log)
    }

    /// Should this arrival be lost to fault injection? Downed ingress links
    /// lose every packet still propagating toward them; ports with injected
    /// loss black-hole a seeded-random fraction. The fault RNG is only
    /// consulted for partial loss, so loss-free runs never touch it.
    pub(crate) fn rx_fault_drop(&mut self, node: NodeId, port: PortId, pkt: &Packet) -> bool {
        let ps = &self.nodes[node.idx()].ports[port.idx()];
        let lost = if !ps.link_up {
            true
        } else {
            let frac = ps.loss_frac;
            frac > 0.0
                && (frac >= 1.0 || {
                    let r: f64 = match self.shard.as_mut() {
                        Some(sc) => sc.node_fault_rngs[node.idx()].gen(),
                        None => self.fault_rng.gen(),
                    };
                    r < frac
                })
        };
        if lost {
            self.total_drops += 1;
            self.fault_drops += 1;
            self.trace(TraceKind::FaultDrop, node, port, pkt.prio, pkt.flow, 0);
        }
        lost
    }

    /// Execute one fault right now. Normally driven by scheduled
    /// [`Event::Fault`]s from an installed [`FaultPlan`]; harnesses may also
    /// call it directly.
    pub fn apply_fault(&mut self, kind: FaultKind) {
        if let Some(p) = self.prof.as_mut() {
            let sim_us = self.now.as_us_f64();
            p.instant(crate::profile::fault_name(&kind), "fault", {
                format!("sim_us={sim_us:.1}")
            });
        }
        match kind {
            FaultKind::LinkDown { node, port } => self.set_link_state(node, port, false),
            FaultKind::LinkUp { node, port } => self.set_link_state(node, port, true),
            FaultKind::DegradeLink {
                node,
                port,
                rate_bps,
            } => {
                let rate = rate_bps.max(1);
                let peer = *self.topo.port(node, port);
                self.nodes[node.idx()].ports[port.idx()].rate_override = Some(rate);
                self.nodes[peer.peer_node.idx()].ports[peer.peer_port.idx()].rate_override =
                    Some(rate);
                self.trace(
                    TraceKind::LinkDegraded,
                    node,
                    port,
                    0,
                    crate::ids::FlowId(0),
                    0,
                );
                self.log_fault("link_degrade", node, port, FaultDetail::RateBps(rate));
            }
            FaultKind::RestoreLinkRate { node, port } => {
                let peer = *self.topo.port(node, port);
                self.nodes[node.idx()].ports[port.idx()].rate_override = None;
                self.nodes[peer.peer_node.idx()].ports[peer.peer_port.idx()].rate_override = None;
                self.trace(
                    TraceKind::LinkDegraded,
                    node,
                    port,
                    0,
                    crate::ids::FlowId(0),
                    0,
                );
                self.log_fault("link_rate_restore", node, port, FaultDetail::None);
            }
            FaultKind::PacketLoss { node, port, frac } => {
                let frac = frac.clamp(0.0, 1.0);
                self.nodes[node.idx()].ports[port.idx()].loss_frac = frac;
                self.trace(
                    TraceKind::FaultDrop,
                    node,
                    port,
                    0,
                    crate::ids::FlowId(0),
                    0,
                );
                self.log_fault("packet_loss", node, port, FaultDetail::LossFrac(frac));
            }
            FaultKind::SwitchReboot { node } => self.reboot_switch(node),
            FaultKind::TelemetryFreeze { node } => {
                let now = self.now;
                // Reuse the pooled snapshot vector (recycled on restore) so a
                // freeze/restore cycle settles into zero allocations.
                let mut snap = std::mem::take(&mut self.telem_snap_pool);
                snap.clear();
                let st = &mut self.nodes[node.idx()];
                for p in st.ports.iter_mut() {
                    for (prio, q) in p.queues.iter_mut().enumerate() {
                        q.sync_clock(&mut p.telem, now);
                        snap.push((q.bytes(), p.telem.queue(prio)));
                    }
                }
                self.recycle_telem_fault(node);
                self.nodes[node.idx()].telem_fault = Some(TelemFault::Frozen(snap));
                self.trace(
                    TraceKind::TelemetryFault,
                    node,
                    PortId(0),
                    0,
                    crate::ids::FlowId(0),
                    0,
                );
                self.log_fault("telem_freeze", node, PortId(u16::MAX), FaultDetail::None);
            }
            FaultKind::TelemetryBlank { node } => {
                self.recycle_telem_fault(node);
                self.nodes[node.idx()].telem_fault = Some(TelemFault::Blank);
                self.trace(
                    TraceKind::TelemetryFault,
                    node,
                    PortId(0),
                    0,
                    crate::ids::FlowId(0),
                    0,
                );
                self.log_fault("telem_blank", node, PortId(u16::MAX), FaultDetail::None);
            }
            FaultKind::TelemetryRestore { node } => {
                self.recycle_telem_fault(node);
                self.trace(
                    TraceKind::TelemetryFault,
                    node,
                    PortId(0),
                    0,
                    crate::ids::FlowId(0),
                    0,
                );
                self.log_fault("telem_restore", node, PortId(u16::MAX), FaultDetail::None);
            }
        }
    }

    /// Reboot a switch: every queued packet is flushed (and counted as a
    /// fault drop), shared-buffer and ingress accounting is released per
    /// packet, every queue's ECN config reverts to the configured static
    /// default, the schedulers reset, and PFC state clears with resumes
    /// sent upstream so paused peers un-stick. The packet currently being
    /// serialized (if any) survives — its bytes are on the wire — and its
    /// accounting is released normally by its pending `TxDone`. Telemetry
    /// counters are *not* reset: they model the collector's view, which
    /// outlives the device (and samplers difference them as monotone).
    fn reboot_switch(&mut self, node: NodeId) {
        let now = self.now;
        let num_ports = self.nodes[node.idx()].ports.len();
        let mut flushed: u64 = 0;
        // Reuse the core-owned scratch buffers across reboots (Vec::new()
        // placeholders left behind by `take` never allocate).
        let mut items = std::mem::take(&mut self.flush_scratch);
        let mut resumes = std::mem::take(&mut self.resume_scratch);
        resumes.clear();
        for pi in 0..num_ports {
            let port = PortId(pi as u16);
            self.clear_pfc_state_keep_sent(node, port);
            let nq = self.nodes[node.idx()].ports[pi].queues.len();
            for prio in 0..nq {
                let st = &mut self.nodes[node.idx()];
                let ps = &mut st.ports[pi];
                ps.queues[prio].flush_into(&mut ps.arena, &mut ps.telem, now, &mut items);
                flushed += items.len() as u64;
                for item in &items {
                    if let Some(buf) = st.buffer.as_mut() {
                        buf.release(item.pkt.size);
                    }
                    if let Some(ingress) = item.ingress {
                        let ib = &mut st.ports[ingress.idx()].ingress_bytes[item.pkt.prio as usize];
                        *ib = ib.saturating_sub(item.pkt.size as u64);
                    }
                }
                st.ports[pi].queues[prio].ecn = self.cfg.port.ecn[prio];
            }
            let ps = &mut self.nodes[node.idx()].ports[pi];
            ps.dwrr.reset();
            let sent = ps.pfc_sent;
            ps.pfc_sent = 0;
            for prio in 0..nq {
                if sent & (1u8 << prio) != 0 {
                    resumes.push((port, prio as Prio));
                }
            }
        }
        self.total_drops += flushed;
        self.fault_drops += flushed;
        for &(port, prio) in &resumes {
            if self.nodes[node.idx()].ports[port.idx()].link_up {
                self.send_pfc(node, port, prio, false);
            }
        }
        items.clear();
        self.flush_scratch = items;
        self.resume_scratch = resumes;
        self.recycle_telem_fault(node);
        self.trace(
            TraceKind::SwitchReboot,
            node,
            PortId(0),
            0,
            crate::ids::FlowId(0),
            flushed,
        );
        self.log_fault(
            "switch_reboot",
            node,
            PortId(u16::MAX),
            FaultDetail::Flushed(flushed),
        );
    }

    /// Clear a node's telemetry fault, recycling a frozen snapshot's storage
    /// into the shared pool so the next freeze reuses it.
    fn recycle_telem_fault(&mut self, node: NodeId) {
        if let Some(TelemFault::Frozen(mut v)) = self.nodes[node.idx()].telem_fault.take() {
            if v.capacity() > self.telem_snap_pool.capacity() {
                v.clear();
                self.telem_snap_pool = v;
            }
        }
    }

    /// [`Self::clear_pfc_state`] minus the `pfc_sent` clear (the reboot path
    /// collects those bits first so it can send explicit resumes).
    fn clear_pfc_state_keep_sent(&mut self, node: NodeId, port: PortId) {
        let now = self.now;
        let ps = &mut self.nodes[node.idx()].ports[port.idx()];
        for prio in 0..ps.pause_since.len() {
            if let Some(since) = ps.pause_since[prio].take() {
                let dur = (now - since).as_ps();
                ps.pause_ps[prio] += dur;
                if let Some(p) = self.prof.as_mut() {
                    p.pause(dur / 1000);
                }
            }
        }
        ps.paused = 0;
    }

    /// The (qlen, telemetry) a controller *reads* for this queue right now,
    /// when distorted by an active telemetry fault; `None` means reads are
    /// healthy and the live queue state applies. Only control-plane
    /// snapshots route through this — the flight-recorder sampler keeps
    /// reading ground truth, which is exactly what makes the distortion
    /// observable in recorded runs.
    pub(crate) fn faulted_reading(
        &self,
        node: NodeId,
        port: PortId,
        prio: Prio,
    ) -> Option<(u64, QueueTelemetry)> {
        match self.nodes[node.idx()].telem_fault.as_ref()? {
            TelemFault::Blank => Some((0, QueueTelemetry::default())),
            TelemFault::Frozen(snap) => {
                let num_prios = self.cfg.port.num_prios;
                snap.get(port.idx() * num_prios + prio as usize).copied()
            }
        }
    }
}

/// A periodic telemetry sampling hook (see [`Simulator::set_sampler`]).
struct Sampler {
    interval: SimTime,
    hook: Box<dyn FnMut(&mut SimCore)>,
}

/// The user-facing simulator: the core plus the pluggable host drivers and
/// switch controllers.
pub struct Simulator {
    core: SimCore,
    drivers: Vec<Option<Box<dyn NicDriver>>>,
    controllers: Vec<Option<Box<dyn QueueController>>>,
    sampler: Option<Sampler>,
    /// Switch ids, cached at construction: the topology is immutable, and
    /// rebuilding this list on every [`Event::ControlTick`] was measurable
    /// allocator traffic at 50 µs tick intervals.
    switch_cache: Vec<NodeId>,
}

impl Simulator {
    /// Build a simulator for `topo` with the given configuration.
    ///
    /// Hosts start without drivers (packets delivered to a driverless host
    /// are counted and discarded); switches start without controllers (the
    /// initial ECN configuration stays in force — i.e. a static-ECN network).
    pub fn new(topo: Topology, cfg: SimConfig) -> Self {
        Self::from_core(SimCore::new(topo, cfg))
    }

    /// Build one shard's simulator for a sharded run (see [`crate::shard`]):
    /// the full topology with this shard's nodes live and foreign nodes as
    /// zero-capacity stand-ins, canonical event keys, per-node RNG streams,
    /// and cross-shard mailboxes for `plan.n_shards` peers.
    pub fn new_sharded(topo: Topology, cfg: SimConfig, plan: &ShardPlan, shard: u32) -> Self {
        assert!(shard < plan.n_shards, "shard index out of range");
        assert_eq!(
            plan.owner_of.len(),
            topo.nodes.len(),
            "shard plan was built for a different topology"
        );
        Self::from_core(SimCore::new_inner(topo, cfg, Some((plan, shard))))
    }

    fn from_core(mut core: SimCore) -> Self {
        let n = core.topo.nodes.len();
        if let Some(dt) = core.cfg.control_interval {
            core.schedule(dt, Event::ControlTick);
        }
        let switch_cache = core.topo.switches().to_vec();
        Simulator {
            core,
            drivers: (0..n).map(|_| None).collect(),
            controllers: (0..n).map(|_| None).collect(),
            sampler: None,
            switch_cache,
        }
    }

    /// Panic unless this simulator was built with [`Simulator::new_sharded`]
    /// for exactly (`n_shards`, `shard`) — the sharded runner's guard against
    /// a builder closure wiring up the wrong shard.
    pub(crate) fn assert_shard(&self, n_shards: u32, shard: u32) {
        let sc = self
            .core
            .shard
            .as_ref()
            .expect("sharded run requires Simulator::new_sharded");
        assert_eq!(sc.n_shards, n_shards, "simulator built for another plan");
        assert_eq!(sc.my_shard, shard, "simulator built for another shard");
    }

    /// Install a periodic telemetry sampler: `hook` runs against the core
    /// every `interval`, starting one interval from now. The hook must only
    /// *read* simulation state (counters, queue depths); sampling must never
    /// perturb the packet trajectory, so two identical seeded runs with and
    /// without a sampler stay identical. Without a sampler no
    /// [`Event::TelemetrySample`] is ever scheduled.
    pub fn set_sampler(&mut self, interval: SimTime, hook: Box<dyn FnMut(&mut SimCore)>) {
        assert!(
            interval > SimTime::ZERO,
            "sampling interval must be positive"
        );
        let first = self.core.now + interval;
        if self.sampler.is_none() {
            self.core.schedule(first, Event::TelemetrySample);
        }
        self.sampler = Some(Sampler { interval, hook });
    }

    /// Read-only access to the core (telemetry, topology, counters).
    pub fn core(&self) -> &SimCore {
        &self.core
    }

    /// Validate `plan` and schedule every fault it contains into the event
    /// loop (faults dated in the past fire immediately). The dedicated
    /// fault RNG is reseeded from [`FaultPlan::seed`], so identical plans
    /// on identical simulations reproduce identical runs; a plan with no
    /// probabilistic faults leaves the packet trajectory of the fault-free
    /// portions untouched.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate()?;
        self.core.fault_rng = SmallRng::seed_from_u64(plan.seed ^ FAULT_SEED_SALT);
        if let Some(sc) = self.core.shard.as_mut() {
            for (i, r) in sc.node_fault_rngs.iter_mut().enumerate() {
                *r = SmallRng::seed_from_u64(mix64(plan.seed ^ FAULT_SEED_SALT) ^ mix64(i as u64));
            }
        }
        // Every scheduled fault appends at most one log entry; reserving up
        // front keeps the steady-state loop free of fault-log growth.
        self.core
            .fault_log
            .reserve(plan.events.len().min(FAULT_LOG_CAP));
        let now = self.core.now;
        for ev in &plan.events {
            let at = ev.at.max(now);
            self.core.schedule(at, Event::Fault(ev.kind.clone()));
        }
        Ok(())
    }

    /// Switch on self-profiling (see [`crate::profile`]). Idempotent; the
    /// profiler observes wall-clock time and counters only, so the simulated
    /// trajectory — and any recorded JSONL — is identical with or without it.
    pub fn enable_profiling(&mut self) {
        if self.core.prof.is_none() {
            self.core.prof = Some(Box::new(SimProfiler::new()));
        }
    }

    /// The live profiler, if profiling is enabled.
    pub fn profiler(&self) -> Option<&SimProfiler> {
        self.core.prof.as_deref()
    }

    /// Detach and return the profiler (flushing still-open fault windows),
    /// leaving profiling disabled. Harnesses call this once at run end.
    pub fn take_profiler(&mut self) -> Option<Box<SimProfiler>> {
        let mut p = self.core.prof.take();
        if let Some(p) = p.as_mut() {
            p.finish();
        }
        p
    }

    /// Install a structured event tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.tracer = Some(tracer);
    }

    /// Access the installed tracer, if any.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.core.tracer.as_mut()
    }

    /// Mutable access to the core for harnesses that need to sync telemetry
    /// clocks or reconfigure queues outside a controller tick.
    pub fn core_mut(&mut self) -> &mut SimCore {
        &mut self.core
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Install the NIC driver for `host`.
    ///
    /// In a sharded simulator, installing onto a host owned by another shard
    /// is a silent no-op: full-topology installers (`install_stacks`, the
    /// bench harness) run unchanged in every shard, and each host's driver
    /// ends up alive only in the shard that owns it.
    pub fn set_driver(&mut self, host: NodeId, driver: Box<dyn NicDriver>) {
        assert!(self.core.topo.is_host(host), "drivers attach to hosts");
        if !self.core.owns_node(host) {
            return;
        }
        self.drivers[host.idx()] = Some(driver);
    }

    /// Whether `node` currently has a controller installed.
    pub fn has_controller(&self, node: NodeId) -> bool {
        self.controllers[node.idx()].is_some()
    }

    /// Install the control-plane logic for `switch`.
    ///
    /// In a sharded simulator, installing onto a switch owned by another
    /// shard is a silent no-op (see [`Simulator::set_driver`]): a foreign
    /// controller would tick against queues that never carry traffic in this
    /// shard and duplicate the owner's telemetry.
    pub fn set_controller(&mut self, switch: NodeId, ctl: Box<dyn QueueController>) {
        assert!(
            !self.core.topo.is_host(switch),
            "controllers attach to switches"
        );
        if !self.core.owns_node(switch) {
            return;
        }
        self.controllers[switch.idx()] = Some(ctl);
    }

    /// Run driver code for `host` outside of an event (e.g. to start flows).
    pub fn with_driver<R>(
        &mut self,
        host: NodeId,
        f: impl FnOnce(&mut dyn NicDriver, &mut HostCtx<'_>) -> R,
    ) -> R {
        let mut d = self.drivers[host.idx()]
            .take()
            .expect("host has no driver installed");
        let mut ctx = HostCtx {
            core: &mut self.core,
            host,
        };
        let r = f(d.as_mut(), &mut ctx);
        self.drivers[host.idx()] = Some(d);
        r
    }

    /// Run controller code for `switch` outside of a tick (e.g. to extract a
    /// trained model).
    pub fn with_controller<R>(
        &mut self,
        switch: NodeId,
        f: impl FnOnce(&mut dyn QueueController, &mut SwitchView<'_>) -> R,
    ) -> R {
        let mut c = self.controllers[switch.idx()]
            .take()
            .expect("switch has no controller installed");
        let mut view = SwitchView {
            core: &mut self.core,
            node: switch,
        };
        let r = f(c.as_mut(), &mut view);
        self.controllers[switch.idx()] = Some(c);
        r
    }

    /// Process a single event. Returns `false` when the event queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.core.events.pop() else {
            return false;
        };
        debug_assert!(s.time >= self.core.now, "time went backwards");
        self.core.now = s.time;
        self.core.events_processed += 1;
        // Self-profiling: disabled this is one pointer check; enabled it
        // reads the wall clock on 1-in-SAMPLE_EVERY dispatches and tallies
        // the kind on all of them. Wall-clock only — the simulated
        // trajectory is untouched either way.
        let prof_t0 = match self.core.prof.as_mut() {
            Some(p) => Some((event_kind(&s.event), p.dispatch_begin())),
            None => None,
        };
        match s.event {
            Event::Arrive { node, port, pkt } => {
                if self.core.rx_fault_drop(node, port, &pkt) {
                    // Lost to a downed link or injected loss: counted and
                    // traced, never delivered.
                } else if self.core.topo.is_host(node) {
                    if let Some(mut d) = self.drivers[node.idx()].take() {
                        let mut ctx = HostCtx {
                            core: &mut self.core,
                            host: node,
                        };
                        d.on_packet(&pkt, &mut ctx);
                        self.drivers[node.idx()] = Some(d);
                    }
                } else {
                    self.core.switch_rx(node, port, pkt);
                }
            }
            Event::TxDone { node, port } => {
                self.core.on_tx_done(node, port);
                // Hosts get the completion signal so deferred sends resume.
                if self.core.topo.is_host(node) {
                    if let Some(mut d) = self.drivers[node.idx()].take() {
                        let mut ctx = HostCtx {
                            core: &mut self.core,
                            host: node,
                        };
                        d.on_tx_ready(&mut ctx);
                        self.drivers[node.idx()] = Some(d);
                    }
                }
            }
            Event::PfcUpdate {
                node,
                port,
                prio,
                pause,
            } => self.core.on_pfc_update(node, port, prio, pause),
            Event::HostTimer { host, token } => {
                if let Some(mut d) = self.drivers[host.idx()].take() {
                    let mut ctx = HostCtx {
                        core: &mut self.core,
                        host,
                    };
                    d.on_timer(token, &mut ctx);
                    self.drivers[host.idx()] = Some(d);
                }
            }
            Event::ControlTick => {
                let span_t0 = self.core.prof.as_ref().map(|_| std::time::Instant::now());
                // Indexed loop over the cached list: `sw` is Copy, so no
                // borrow of `self` outlives the controller call and no Vec
                // is rebuilt per tick.
                for i in 0..self.switch_cache.len() {
                    let sw = self.switch_cache[i];
                    if let Some(mut c) = self.controllers[sw.idx()].take() {
                        let mut view = SwitchView {
                            core: &mut self.core,
                            node: sw,
                        };
                        c.on_tick(&mut view);
                        self.controllers[sw.idx()] = Some(c);
                    }
                }
                if let Some(t0) = span_t0 {
                    let sim_us = self.core.now.as_us_f64();
                    if let Some(p) = self.core.prof.as_mut() {
                        p.span("control_tick", "control", t0, format!("sim_us={sim_us:.1}"));
                    }
                }
                if let Some(dt) = self.core.cfg.control_interval {
                    let at = self.core.now + dt;
                    self.core.schedule(at, Event::ControlTick);
                }
            }
            Event::TelemetrySample => {
                if let Some(mut s) = self.sampler.take() {
                    let span_t0 = self.core.prof.as_ref().map(|_| std::time::Instant::now());
                    (s.hook)(&mut self.core);
                    if let Some(t0) = span_t0 {
                        let sim_us = self.core.now.as_us_f64();
                        if let Some(p) = self.core.prof.as_mut() {
                            p.span(
                                "telemetry_sample",
                                "telemetry",
                                t0,
                                format!("sim_us={sim_us:.1}"),
                            );
                        }
                    }
                    let at = self.core.now + s.interval;
                    self.core.schedule(at, Event::TelemetrySample);
                    self.sampler = Some(s);
                }
            }
            Event::Fault(kind) => self.core.apply_fault(kind),
        }
        if let Some((kind, t0)) = prof_t0 {
            let pending = self.core.events.len();
            if let Some(p) = self.core.prof.as_mut() {
                p.dispatch_end(kind, t0, pending);
            }
        }
        true
    }

    /// Run until simulated time reaches `t` (events at exactly `t` are
    /// processed). Afterwards `now() == t` even if the queue drained early.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.core.events.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.core.now < t {
            self.core.now = t;
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimTime) {
        let t = self.core.now + d;
        self.run_until(t);
    }

    /// Process every pending event with activation time strictly below
    /// `bound`, returning how many were processed. Unlike
    /// [`Simulator::run_until`] this never advances `now` past the last
    /// processed event — the sharded run loop owns time advancement.
    pub fn run_events_before(&mut self, bound: SimTime) -> u64 {
        let mut n = 0;
        while let Some(next) = self.core.events.peek_time() {
            if next >= bound {
                break;
            }
            self.step();
            n += 1;
        }
        n
    }

    /// Advance `now` to `t` if it is behind (no events are processed) — the
    /// end-of-horizon counterpart of [`Simulator::run_until`] for sharded
    /// runs, so post-run telemetry syncs see the full horizon.
    pub fn advance_now_to(&mut self, t: SimTime) {
        if self.core.now < t {
            self.core.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, PRIO_RDMA};
    use crate::packet::{Ecn, PacketKind};
    use crate::topology::TopologySpec;
    use std::any::Any;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Driver that records received data bytes and their arrival times.
    struct Sink {
        got: Rc<RefCell<Vec<(SimTime, u32)>>>,
    }
    impl NicDriver for Sink {
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut HostCtx<'_>) {
            self.got.borrow_mut().push((ctx.now(), pkt.size));
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut HostCtx<'_>) {}
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Driver that blasts `n` packets at t=0.
    struct Blaster {
        dst: NodeId,
        n: u32,
        flow: u64,
        ecn: Ecn,
    }
    impl NicDriver for Blaster {
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut HostCtx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
            let src = ctx.host();
            for i in 0..self.n {
                let pkt = Packet::data(
                    FlowId(self.flow),
                    src,
                    self.dst,
                    PRIO_RDMA,
                    i as u64 * 1000,
                    1000,
                    i == self.n - 1,
                    self.ecn,
                );
                ctx.send(pkt);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_host_sim(rate: u64) -> (Simulator, Rc<RefCell<Vec<(SimTime, u32)>>>) {
        let topo = TopologySpec::single_switch(2, rate, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let got = Rc::new(RefCell::new(Vec::new()));
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        sim.set_driver(hosts[1], Box::new(Sink { got: got.clone() }));
        sim.set_driver(
            hosts[0],
            Box::new(Blaster {
                dst: hosts[1],
                n: 100,
                flow: 1,
                ecn: Ecn::Ect,
            }),
        );
        sim.with_driver(hosts[0], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        (sim, got)
    }

    #[test]
    fn packets_traverse_switch_at_line_rate() {
        let (mut sim, got) = two_host_sim(10_000_000_000);
        sim.run_until(SimTime::from_ms(10));
        let got = got.borrow();
        assert_eq!(got.len(), 100, "all packets delivered");
        // 100 packets of 1048B at 10 Gbps back to back: the gap between
        // consecutive arrivals equals one serialization time (838.4 ns).
        let ser = tx_time(1048, 10_000_000_000);
        for w in got.windows(2) {
            assert_eq!(w[1].0 - w[0].0, ser);
        }
        // First packet: 2 serializations (host + switch) + 2 propagation.
        let first = got[0].0;
        assert_eq!(first, ser + ser + SimTime::from_ns(1000));
        assert_eq!(sim.core().total_drops, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut s1, g1) = two_host_sim(25_000_000_000);
        let (mut s2, g2) = two_host_sim(25_000_000_000);
        s1.run_until(SimTime::from_ms(1));
        s2.run_until(SimTime::from_ms(1));
        assert_eq!(*g1.borrow(), *g2.borrow());
        assert_eq!(s1.core().events_processed, s2.core().events_processed);
    }

    #[test]
    fn ecn_marking_applies_under_congestion() {
        // Two senders at 25G into one 25G receiver -> queue builds at the
        // switch; with a tiny Kmin every ECT packet beyond the threshold is
        // marked.
        let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.port.ecn[PRIO_RDMA as usize] = Some(crate::queues::EcnConfig::new(2_000, 2_000, 1.0));
        let mut sim = Simulator::new(topo, cfg);
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.set_driver(hosts[2], Box::new(Sink { got: got.clone() }));
        for (i, &h) in hosts[..2].iter().enumerate() {
            sim.set_driver(
                h,
                Box::new(Blaster {
                    dst: hosts[2],
                    n: 200,
                    flow: i as u64 + 1,
                    ecn: Ecn::Ect,
                }),
            );
            sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        }
        sim.run_until(SimTime::from_ms(5));
        let sw = sim.core().topo.switches()[0];
        // The egress queue towards host 2 is port index 2.
        let t = sim.core().queue_telem(sw, PortId(2), PRIO_RDMA);
        assert_eq!(t.tx_pkts, 400);
        assert!(
            t.tx_marked_pkts > 300,
            "most packets should be CE-marked, got {}",
            t.tx_marked_pkts
        );
        assert_eq!(sim.core().total_drops, 0);
    }

    #[test]
    fn non_ect_never_marked() {
        let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.port.ecn[PRIO_RDMA as usize] = Some(crate::queues::EcnConfig::new(0, 0, 1.0));
        let mut sim = Simulator::new(topo, cfg);
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.set_driver(hosts[2], Box::new(Sink { got: got.clone() }));
        sim.set_driver(
            hosts[0],
            Box::new(Blaster {
                dst: hosts[2],
                n: 50,
                flow: 1,
                ecn: Ecn::NotEct,
            }),
        );
        sim.with_driver(hosts[0], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        sim.run_until(SimTime::from_ms(5));
        let sw = sim.core().topo.switches()[0];
        let t = sim.core().queue_telem(sw, PortId(2), PRIO_RDMA);
        assert_eq!(t.tx_marked_pkts, 0);
    }

    #[test]
    fn pfc_prevents_loss_on_lossless_class() {
        // 8 senders blast a single receiver with far more data than the
        // switch buffer; with PFC on the RDMA class nothing may be dropped.
        let topo = TopologySpec::single_switch(9, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.buffer_bytes = 512 * 1024; // small buffer to force PFC
        let mut sim = Simulator::new(topo, cfg);
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.set_driver(hosts[8], Box::new(Sink { got: got.clone() }));
        for (i, &h) in hosts[..8].iter().enumerate() {
            sim.set_driver(
                h,
                Box::new(Blaster {
                    dst: hosts[8],
                    n: 1000, // 8 MB total >> 512 KB buffer
                    flow: i as u64 + 1,
                    ecn: Ecn::Ect,
                }),
            );
            sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        }
        sim.run_until(SimTime::from_ms(50));
        assert_eq!(sim.core().total_drops, 0, "PFC must keep RDMA lossless");
        assert!(sim.core().total_pfc_pauses > 0, "PFC must have triggered");
        assert_eq!(got.borrow().len(), 8000, "everything eventually delivered");
    }

    #[test]
    fn droptail_drops_without_pfc() {
        // Same overload on the TCP class (not lossless, NotEct) with a small
        // per-queue bound: drops must occur.
        let topo = TopologySpec::single_switch(9, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.port.max_queue_bytes[0] = 64 * 1024;
        let mut sim = Simulator::new(topo, cfg);
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.set_driver(hosts[8], Box::new(Sink { got: got.clone() }));
        struct TcpBlaster {
            dst: NodeId,
        }
        impl NicDriver for TcpBlaster {
            fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
                let src = ctx.host();
                for i in 0..500u32 {
                    let pkt = Packet::data(
                        FlowId(src.0 as u64),
                        src,
                        self.dst,
                        crate::ids::PRIO_TCP,
                        i as u64 * 1000,
                        1000,
                        false,
                        Ecn::NotEct,
                    );
                    ctx.send(pkt);
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        for &h in &hosts[..8] {
            sim.set_driver(h, Box::new(TcpBlaster { dst: hosts[8] }));
            sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        }
        sim.run_until(SimTime::from_ms(20));
        assert!(sim.core().total_drops > 0, "drop-tail class must drop");
    }

    #[test]
    fn control_tick_fires_and_can_reconfigure() {
        struct Tuner {
            ticks: Rc<RefCell<u32>>,
        }
        impl QueueController for Tuner {
            fn on_tick(&mut self, view: &mut SwitchView<'_>) {
                *self.ticks.borrow_mut() += 1;
                view.set_ecn(
                    PortId(0),
                    PRIO_RDMA,
                    Some(crate::queues::EcnConfig::new(1234, 5678, 0.5)),
                );
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let topo = TopologySpec::single_switch(2, 25_000_000_000, SimTime::from_ns(500)).build();
        let cfg = SimConfig::default().with_control_interval(SimTime::from_us(100));
        let mut sim = Simulator::new(topo, cfg);
        let sw = sim.core().topo.switches()[0];
        let ticks = Rc::new(RefCell::new(0));
        sim.set_controller(
            sw,
            Box::new(Tuner {
                ticks: ticks.clone(),
            }),
        );
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(*ticks.borrow(), 10);
        let q = sim.core().queue(sw, PortId(0), PRIO_RDMA);
        assert_eq!(q.ecn.unwrap().kmin_bytes, 1234);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let topo = TopologySpec::single_switch(2, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.control_interval = None;
        let mut sim = Simulator::new(topo, cfg);
        sim.run_until(SimTime::from_ms(3));
        assert_eq!(sim.now(), SimTime::from_ms(3));
    }

    #[test]
    fn ack_kind_round_trips_through_fabric() {
        let topo = TopologySpec::single_switch(2, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        struct KindSink {
            kinds: Rc<RefCell<Vec<PacketKind>>>,
        }
        impl NicDriver for KindSink {
            fn on_packet(&mut self, p: &Packet, _c: &mut HostCtx<'_>) {
                self.kinds.borrow_mut().push(p.kind);
            }
            fn on_timer(&mut self, _t: u64, _c: &mut HostCtx<'_>) {}
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.set_driver(hosts[1], Box::new(KindSink { kinds: got.clone() }));
        struct Once {
            dst: NodeId,
        }
        impl NicDriver for Once {
            fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
                let src = ctx.host();
                ctx.send(Packet::ack(FlowId(9), src, self.dst, 2, 77, true, false));
                ctx.send(Packet::cnp(FlowId(9), src, self.dst, 2));
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.set_driver(hosts[0], Box::new(Once { dst: hosts[1] }));
        sim.with_driver(hosts[0], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        sim.run_until(SimTime::from_ms(1));
        let kinds = got.borrow();
        assert_eq!(kinds.len(), 2);
        assert!(matches!(
            kinds[0],
            PacketKind::Ack {
                cum_ack: 77,
                ce_echo: true,
                fin: false
            }
        ));
        assert!(matches!(kinds[1], PacketKind::Cnp));
    }

    #[test]
    fn sampler_fires_at_cadence() {
        let topo = TopologySpec::single_switch(2, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.control_interval = None;
        let mut sim = Simulator::new(topo, cfg);
        let times: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let t2 = times.clone();
        sim.set_sampler(
            SimTime::from_us(100),
            Box::new(move |core| t2.borrow_mut().push(core.now())),
        );
        sim.run_until(SimTime::from_ms(1));
        let times = times.borrow();
        assert_eq!(times.len(), 10);
        for (i, t) in times.iter().enumerate() {
            assert_eq!(*t, SimTime::from_us(100 * (i as u64 + 1)));
        }
    }

    #[test]
    fn sampler_does_not_perturb_the_run() {
        let (mut s1, g1) = two_host_sim(25_000_000_000);
        let (mut s2, g2) = two_host_sim(25_000_000_000);
        s2.set_sampler(SimTime::from_us(10), Box::new(|_| {}));
        s1.run_until(SimTime::from_ms(1));
        s2.run_until(SimTime::from_ms(1));
        assert_eq!(
            *g1.borrow(),
            *g2.borrow(),
            "sampling must not change delivery"
        );
        assert_eq!(s1.core().total_drops, s2.core().total_drops);
    }

    #[test]
    fn pfc_pause_time_accumulates() {
        // Same overload as pfc_prevents_loss: the switch pauses the sending
        // hosts, so their NIC ports accumulate pause time on the RDMA class.
        let topo = TopologySpec::single_switch(9, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.buffer_bytes = 512 * 1024;
        let mut sim = Simulator::new(topo, cfg);
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.set_driver(hosts[8], Box::new(Sink { got: got.clone() }));
        for (i, &h) in hosts[..8].iter().enumerate() {
            sim.set_driver(
                h,
                Box::new(Blaster {
                    dst: hosts[8],
                    n: 1000,
                    flow: i as u64 + 1,
                    ecn: Ecn::Ect,
                }),
            );
            sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        }
        sim.run_until(SimTime::from_ms(50));
        assert!(sim.core().total_pfc_pauses > 0);
        let paused_total: u64 = hosts[..8]
            .iter()
            .map(|&h| sim.core().pfc_pause_time(h, PortId(0), PRIO_RDMA).as_ps())
            .sum();
        assert!(paused_total > 0, "hosts must have spent time paused");
        // Pause time on any one port cannot exceed the run length.
        for &h in &hosts[..8] {
            assert!(sim.core().pfc_pause_time(h, PortId(0), PRIO_RDMA) <= SimTime::from_ms(50));
        }
    }

    #[test]
    fn link_state_changes_are_traced() {
        let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.set_tracer(Tracer::new(crate::trace::TraceFilter::default(), 64));
        let sw = sim.core().topo.switches()[0];
        sim.core_mut().set_link_state(sw, PortId(0), false);
        sim.core_mut().set_link_state(sw, PortId(0), true);
        let events = sim.tracer_mut().unwrap().take();
        let downs = events
            .iter()
            .filter(|e| e.kind == TraceKind::LinkDown)
            .count();
        let ups = events
            .iter()
            .filter(|e| e.kind == TraceKind::LinkUp)
            .count();
        assert_eq!(downs, 2, "one LinkDown per endpoint");
        assert_eq!(ups, 2, "one LinkUp per endpoint");
        assert!(events.iter().any(|e| e.node == sw && e.port == PortId(0)));
    }

    #[test]
    fn loss_free_fault_plan_does_not_perturb() {
        use crate::fault::{FaultKind, FaultPlan};
        // A plan whose faults never fire within the horizon and draw no
        // randomness must leave the run bit-identical to a plan-free run.
        let (mut s1, g1) = two_host_sim(25_000_000_000);
        let (mut s2, g2) = two_host_sim(25_000_000_000);
        let sw = s2.core().topo.switches()[0];
        let plan =
            FaultPlan::new(99).at(SimTime::from_ms(500), FaultKind::SwitchReboot { node: sw });
        s2.install_fault_plan(&plan).unwrap();
        s1.run_until(SimTime::from_ms(1));
        s2.run_until(SimTime::from_ms(1));
        assert_eq!(*g1.borrow(), *g2.borrow());
        assert_eq!(s1.core().total_drops, s2.core().total_drops);
    }

    #[test]
    fn blackhole_drops_everything_and_partial_loss_some() {
        use crate::fault::{FaultKind, FaultPlan};
        let (mut sim, got) = two_host_sim(10_000_000_000);
        let sw = sim.core().topo.switches()[0];
        // Blackhole the switch's ingress from host 0 from t=0.
        let plan = FaultPlan::new(7).at(
            SimTime::ZERO,
            FaultKind::PacketLoss {
                node: sw,
                port: PortId(0),
                frac: 1.0,
            },
        );
        sim.install_fault_plan(&plan).unwrap();
        sim.run_until(SimTime::from_ms(10));
        assert_eq!(got.borrow().len(), 0, "blackhole delivers nothing");
        assert_eq!(sim.core().fault_drops, 100);
        assert_eq!(sim.core().total_drops, 100);

        let (mut sim, got) = two_host_sim(10_000_000_000);
        let sw = sim.core().topo.switches()[0];
        let plan = FaultPlan::new(7).at(
            SimTime::ZERO,
            FaultKind::PacketLoss {
                node: sw,
                port: PortId(0),
                frac: 0.3,
            },
        );
        sim.install_fault_plan(&plan).unwrap();
        sim.run_until(SimTime::from_ms(10));
        let delivered = got.borrow().len();
        assert!(
            delivered > 0 && delivered < 100,
            "partial loss: {delivered}"
        );
        assert_eq!(sim.core().fault_drops as usize, 100 - delivered);
    }

    #[test]
    fn degraded_link_slows_delivery_and_restores() {
        use crate::fault::FaultPlan;
        // 10G link degraded to 1G for the whole run: 100 packets take ~10x
        // longer than at full rate.
        let (mut fast, got_fast) = two_host_sim(10_000_000_000);
        fast.run_until(SimTime::from_ms(10));
        let fast_last = got_fast.borrow().last().unwrap().0;

        let (mut slow, got_slow) = two_host_sim(10_000_000_000);
        let hosts: Vec<NodeId> = slow.core().topo.hosts().to_vec();
        let plan = FaultPlan::new(0).degrade_window(
            hosts[0],
            PortId(0),
            1_000_000_000,
            SimTime::ZERO,
            SimTime::from_ms(5),
        );
        slow.install_fault_plan(&plan).unwrap();
        slow.run_until(SimTime::from_ms(10));
        assert_eq!(got_slow.borrow().len(), 100, "all delivered eventually");
        let slow_last = got_slow.borrow().last().unwrap().0;
        assert!(
            slow_last > fast_last.mul(4),
            "degraded run must be much slower: {slow_last:?} vs {fast_last:?}"
        );
    }

    #[test]
    fn switch_reboot_flushes_queues_and_resets_ecn() {
        use crate::fault::FaultKind;
        // Two 25G senders into one 25G sink builds a standing queue; a
        // reboot mid-run must empty it, release the buffer, and restore the
        // default ECN config over a controller-modified one.
        let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.set_driver(hosts[2], Box::new(Sink { got: got.clone() }));
        for (i, &h) in hosts[..2].iter().enumerate() {
            sim.set_driver(
                h,
                Box::new(Blaster {
                    dst: hosts[2],
                    n: 400,
                    flow: i as u64 + 1,
                    ecn: Ecn::Ect,
                }),
            );
            sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        }
        let sw = sim.core().topo.switches()[0];
        // Let the queue build, then tamper with the config and reboot.
        sim.run_until(SimTime::from_us(60));
        assert!(sim.core().buffer_used(sw) > 0, "queue must have built");
        let default_ecn = sim.core().cfg.port.ecn[PRIO_RDMA as usize];
        sim.core_mut().queue_mut(sw, PortId(2), PRIO_RDMA).ecn =
            Some(crate::queues::EcnConfig::new(1, 2, 1.0));
        sim.core_mut()
            .apply_fault(FaultKind::SwitchReboot { node: sw });
        assert!(sim.core().fault_drops > 0, "flushed packets counted");
        let buffered = sim.core().buffer_used(sw);
        // At most the one in-flight packet can still be charged.
        assert!(buffered <= 2000, "buffer released on reboot: {buffered}");
        assert_eq!(
            sim.core().queue(sw, PortId(2), PRIO_RDMA).ecn,
            default_ecn,
            "ECN reverts to the static default"
        );
        // The run continues and the remaining traffic drains cleanly.
        sim.run_until(SimTime::from_ms(20));
        assert!(!got.borrow().is_empty());
    }

    #[test]
    fn telemetry_freeze_and_blank_distort_reads_not_ground_truth() {
        use crate::fault::FaultKind;
        let (mut sim, _got) = two_host_sim(10_000_000_000);
        let sw = sim.core().topo.switches()[0];
        sim.run_until(SimTime::from_us(50));
        let live = sim.core().queue_telem(sw, PortId(1), PRIO_RDMA);
        assert!(live.enq_pkts > 0, "traffic flowed");
        assert!(
            sim.core()
                .faulted_reading(sw, PortId(1), PRIO_RDMA)
                .is_none(),
            "healthy reads are undistorted"
        );
        sim.core_mut()
            .apply_fault(FaultKind::TelemetryFreeze { node: sw });
        let (q0, t0) = sim
            .core()
            .faulted_reading(sw, PortId(1), PRIO_RDMA)
            .unwrap();
        sim.run_until(SimTime::from_ms(10));
        let (q1, t1) = sim
            .core()
            .faulted_reading(sw, PortId(1), PRIO_RDMA)
            .unwrap();
        assert_eq!((q0, t0), (q1, t1), "frozen reads never move");
        let truth = sim.core().queue_telem(sw, PortId(1), PRIO_RDMA);
        assert!(truth.enq_pkts > t1.enq_pkts, "ground truth kept advancing");
        sim.core_mut()
            .apply_fault(FaultKind::TelemetryBlank { node: sw });
        let (qb, tb) = sim
            .core()
            .faulted_reading(sw, PortId(1), PRIO_RDMA)
            .unwrap();
        assert_eq!(qb, 0);
        assert_eq!(tb, QueueTelemetry::default());
        sim.core_mut()
            .apply_fault(FaultKind::TelemetryRestore { node: sw });
        assert!(sim
            .core()
            .faulted_reading(sw, PortId(1), PRIO_RDMA)
            .is_none());
    }

    #[test]
    fn fault_log_records_and_drains() {
        use crate::fault::{FaultKind, FaultPlan};
        let (mut sim, _got) = two_host_sim(10_000_000_000);
        let sw = sim.core().topo.switches()[0];
        let plan = FaultPlan::new(1)
            .link_flap(sw, PortId(0), SimTime::from_us(10), SimTime::from_us(20))
            .at(SimTime::from_us(30), FaultKind::SwitchReboot { node: sw });
        sim.install_fault_plan(&plan).unwrap();
        sim.run_until(SimTime::from_ms(1));
        let log = sim.core_mut().drain_fault_log();
        let kinds: Vec<&str> = log.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["link_down", "link_up", "switch_reboot"]);
        assert_eq!(log[0].at, SimTime::from_us(10));
        assert!(sim.core_mut().drain_fault_log().is_empty(), "drained");
    }
}
