//! Hot-path self-profiling for the simulator.
//!
//! A [`SimProfiler`] rides inside [`crate::sim::SimCore`] behind an
//! `Option<Box<_>>`: disabled (the default) the engine pays one pointer
//! check per event dispatch and nothing else, and because profiling is
//! **read-only wall-clock observation** — it never touches the simulation
//! RNG, the event queue order, or any packet state — recorded JSONL output
//! is byte-identical with profiling on or off.
//!
//! What it captures, enabled:
//!
//! * **Per-event-type dispatch timing** — exact dispatch *counts* per
//!   [`crate::event::Event`] kind, with wall-clock self-time histograms
//!   sampled 1-in-[`SAMPLE_EVERY`] (two `Instant::now()` calls per *sampled*
//!   event keeps overhead within the ≤5% events/sec budget; total self time
//!   is estimated by scaling the sampled sum).
//! * **Queue shape** — a histogram of pending-event counts at sampled
//!   dispatches, plus the timing wheel's tier/rotation counters
//!   ([`crate::event::QueueStats`]).
//! * **Per-queue pathologies** — histograms of the egress queue depth at
//!   every ECN CE-mark and every drop, and of PFC pause durations.
//! * **Spans & instants** — control ticks, controller phases, telemetry
//!   samples, fault executions and link-down windows, exportable as Chrome
//!   `trace_event` JSON (load the bench's `--profile out.json` artifact in
//!   `about://tracing` or Perfetto).
//!
//! All histograms are `acc_metrics` log-linear HDR histograms: fixed
//! footprint, allocation-free recording, mergeable across runs.

use crate::event::QueueStats;
use acc_metrics::Histogram;
use serde_json::{json, Value};
use std::time::Instant;

/// Dispatch timing is sampled 1-in-`SAMPLE_EVERY` (deterministic countdown,
/// not random — the profiler must not consume sim entropy). Counts stay
/// exact; self-time totals are estimated by scaling the sampled sum.
pub const SAMPLE_EVERY: u32 = 16;

/// Number of [`crate::event::Event`] kinds tracked.
pub const N_EVENT_KINDS: usize = 7;

/// Display names, indexed by [`event_kind`].
pub const EVENT_KIND_NAMES: [&str; N_EVENT_KINDS] = [
    "arrive",
    "tx_done",
    "pfc_update",
    "host_timer",
    "control_tick",
    "telemetry_sample",
    "fault",
];

/// Map an event to its kind index (see [`EVENT_KIND_NAMES`]).
#[inline]
pub fn event_kind(ev: &crate::event::Event) -> usize {
    use crate::event::Event::*;
    match ev {
        Arrive { .. } => 0,
        TxDone { .. } => 1,
        PfcUpdate { .. } => 2,
        HostTimer { .. } => 3,
        ControlTick => 4,
        TelemetrySample => 5,
        Fault(_) => 6,
    }
}

/// Stable display name for a fault kind (Chrome-trace instant markers).
pub fn fault_name(kind: &crate::fault::FaultKind) -> &'static str {
    use crate::fault::FaultKind::*;
    match kind {
        LinkDown { .. } => "fault:link_down",
        LinkUp { .. } => "fault:link_up",
        DegradeLink { .. } => "fault:degrade_link",
        RestoreLinkRate { .. } => "fault:restore_link_rate",
        PacketLoss { .. } => "fault:packet_loss",
        SwitchReboot { .. } => "fault:switch_reboot",
        TelemetryFreeze { .. } => "fault:telem_freeze",
        TelemetryBlank { .. } => "fault:telem_blank",
        TelemetryRestore { .. } => "fault:telem_restore",
    }
}

/// Exact count + sampled self-time for one event kind.
#[derive(Debug)]
pub struct KindStats {
    /// Events of this kind dispatched (exact).
    pub count: u64,
    /// Events whose dispatch was wall-clock timed (≈ count / SAMPLE_EVERY).
    pub timed: u64,
    /// Wall-clock self time of timed dispatches, nanoseconds.
    pub self_ns: Histogram,
}

impl KindStats {
    fn new() -> Self {
        KindStats {
            count: 0,
            timed: 0,
            self_ns: Histogram::new(),
        }
    }

    /// Estimated total self time (ns) across *all* dispatches of this kind:
    /// the sampled sum scaled by the sampling factor.
    pub fn est_total_self_ns(&self) -> f64 {
        self.self_ns.sum() as f64 * SAMPLE_EVERY as f64
    }
}

/// One completed wall-clock span, exportable as a Chrome `"X"` event.
#[derive(Debug)]
pub struct Span {
    /// Span name (e.g. `control_tick`, `acc_train`, `link_down`).
    pub name: &'static str,
    /// Chrome trace category.
    pub cat: &'static str,
    /// Start, µs since the profiler's origin instant.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// Free-form annotation (becomes `args.info`).
    pub arg: String,
}

/// One instantaneous marker, exportable as a Chrome `"i"` event.
#[derive(Debug)]
pub struct InstantEvent {
    /// Marker name (e.g. the fault kind).
    pub name: &'static str,
    /// Chrome trace category.
    pub cat: &'static str,
    /// Timestamp, µs since the profiler's origin instant.
    pub ts_us: f64,
    /// Free-form annotation (becomes `args.info`).
    pub arg: String,
}

/// Hard cap on retained spans + instants: a runaway span source degrades to
/// a counted drop, never unbounded memory.
const SPAN_CAP: usize = 262_144;

/// The per-simulator profiler. See the module docs for the contract.
#[derive(Debug)]
pub struct SimProfiler {
    origin: Instant,
    countdown: u32,
    kinds: [KindStats; N_EVENT_KINDS],
    /// Pending-event count at sampled dispatches.
    pub queue_depth: Histogram,
    /// Egress queue depth (bytes) at each ECN CE mark.
    pub ecn_mark_qlen: Histogram,
    /// Egress queue depth (bytes) at each tail/buffer drop.
    pub drop_qlen: Histogram,
    /// Completed PFC pause durations, nanoseconds.
    pub pause_ns: Histogram,
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    spans_dropped: u64,
    /// Open link-down windows: (endpoint key, wall start µs, annotation).
    open_windows: Vec<(u64, f64, String)>,
}

impl Default for SimProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SimProfiler {
    /// A fresh profiler whose span clock starts now.
    pub fn new() -> Self {
        SimProfiler {
            origin: Instant::now(),
            countdown: SAMPLE_EVERY,
            kinds: std::array::from_fn(|_| KindStats::new()),
            queue_depth: Histogram::new(),
            ecn_mark_qlen: Histogram::new(),
            drop_qlen: Histogram::new(),
            pause_ns: Histogram::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            spans_dropped: 0,
            open_windows: Vec::new(),
        }
    }

    /// The instant all span/instant timestamps are relative to.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Call at the top of event dispatch. Returns a start instant on the
    /// sampled 1-in-[`SAMPLE_EVERY`] dispatches, `None` (no clock read) on
    /// the rest.
    #[inline]
    pub fn dispatch_begin(&mut self) -> Option<Instant> {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = SAMPLE_EVERY;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Call after dispatching an event of `kind`. `t0` is whatever
    /// [`SimProfiler::dispatch_begin`] returned; `pending` is the event
    /// queue length after the pop.
    #[inline]
    pub fn dispatch_end(&mut self, kind: usize, t0: Option<Instant>, pending: usize) {
        let k = &mut self.kinds[kind];
        k.count += 1;
        if let Some(t0) = t0 {
            k.timed += 1;
            k.self_ns.record(t0.elapsed().as_nanos() as u64);
            self.queue_depth.record(pending as u64);
        }
    }

    /// Per-kind stats, indexed by [`event_kind`].
    pub fn kind_stats(&self) -> &[KindStats; N_EVENT_KINDS] {
        &self.kinds
    }

    /// Record a completed wall-clock span started at `start`.
    pub fn span(&mut self, name: &'static str, cat: &'static str, start: Instant, arg: String) {
        if self.spans.len() + self.instants.len() >= SPAN_CAP {
            self.spans_dropped += 1;
            return;
        }
        let start_us = start.duration_since(self.origin).as_secs_f64() * 1e6;
        let dur_us = start.elapsed().as_secs_f64() * 1e6;
        self.spans.push(Span {
            name,
            cat,
            start_us,
            dur_us,
            arg,
        });
    }

    /// Record an instantaneous marker (e.g. a fault executing).
    pub fn instant(&mut self, name: &'static str, cat: &'static str, arg: String) {
        if self.spans.len() + self.instants.len() >= SPAN_CAP {
            self.spans_dropped += 1;
            return;
        }
        let ts_us = self.origin.elapsed().as_secs_f64() * 1e6;
        self.instants.push(InstantEvent {
            name,
            cat,
            ts_us,
            arg,
        });
    }

    /// Open a link-down window for endpoint `key` (closed by
    /// [`SimProfiler::close_window`]; still-open windows are flushed as
    /// spans by [`SimProfiler::finish`]).
    pub fn open_window(&mut self, key: u64, arg: String) {
        // A re-down of an already-down link replaces the annotation only.
        if let Some(w) = self.open_windows.iter_mut().find(|w| w.0 == key) {
            w.2 = arg;
            return;
        }
        let start_us = self.origin.elapsed().as_secs_f64() * 1e6;
        self.open_windows.push((key, start_us, arg));
    }

    /// Close the link-down window for `key`, emitting its span.
    pub fn close_window(&mut self, key: u64) {
        let Some(pos) = self.open_windows.iter().position(|w| w.0 == key) else {
            return;
        };
        let (_, start_us, arg) = self.open_windows.swap_remove(pos);
        let now_us = self.origin.elapsed().as_secs_f64() * 1e6;
        if self.spans.len() + self.instants.len() >= SPAN_CAP {
            self.spans_dropped += 1;
            return;
        }
        self.spans.push(Span {
            name: "link_down",
            cat: "fault",
            start_us,
            dur_us: now_us - start_us,
            arg,
        });
    }

    /// Record an ECN CE mark at egress queue depth `qlen` bytes.
    #[inline]
    pub fn ecn_mark(&mut self, qlen: u64) {
        self.ecn_mark_qlen.record(qlen);
    }

    /// Record a drop at egress queue depth `qlen` bytes.
    #[inline]
    pub fn drop_at(&mut self, qlen: u64) {
        self.drop_qlen.record(qlen);
    }

    /// Record a completed PFC pause of `ns` nanoseconds.
    #[inline]
    pub fn pause(&mut self, ns: u64) {
        self.pause_ns.record(ns);
    }

    /// Flush still-open windows (e.g. a link that stayed down to the end of
    /// the run) as spans ending now.
    pub fn finish(&mut self) {
        let keys: Vec<u64> = self.open_windows.iter().map(|w| w.0).collect();
        for key in keys {
            self.close_window(key);
        }
    }

    /// Spans dropped at the [`SPAN_CAP`] ceiling.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Recorded instant markers.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// The per-run profile summary: per-kind dispatch counts and self-time
    /// percentiles, queue-shape histograms and the timing-wheel counters.
    /// Schema documented in EXPERIMENTS.md ("Observability & profiling").
    pub fn summary_json(&self, queue: QueueStats) -> Value {
        let kinds: Vec<Value> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.count > 0)
            .map(|(i, k)| {
                json!({
                    "kind": EVENT_KIND_NAMES[i],
                    "count": k.count,
                    "timed": k.timed,
                    "sampling": SAMPLE_EVERY,
                    "est_total_self_ns": k.est_total_self_ns(),
                    "self_ns": hist_json(&k.self_ns),
                })
            })
            .collect();
        json!({
            "event_kinds": kinds,
            "queue_depth": hist_json(&self.queue_depth),
            "ecn_mark_qlen": hist_json(&self.ecn_mark_qlen),
            "drop_qlen": hist_json(&self.drop_qlen),
            "pause_ns": hist_json(&self.pause_ns),
            "event_queue": {
                "pushes_near": queue.pushes_near,
                "pushes_wheel": queue.pushes_wheel,
                "pushes_overflow": queue.pushes_overflow,
                "advances": queue.advances,
                "overflow_migrations": queue.overflow_migrations,
            },
            "spans": self.spans.len(),
            "instants": self.instants.len(),
            "spans_dropped": self.spans_dropped,
        })
    }

    /// Render spans/instants as Chrome `trace_event` objects. `offset_us`
    /// shifts this profiler's clock onto the caller's trace timeline
    /// (profilers from different runs have different origins); `pid`/`tid`
    /// label the track.
    pub fn trace_events(&self, offset_us: f64, pid: u64, tid: u64) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.spans.len() + self.instants.len());
        for s in &self.spans {
            out.push(json!({
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.start_us + offset_us,
                "dur": s.dur_us,
                "pid": pid,
                "tid": tid,
                "args": {"info": s.arg},
            }));
        }
        for i in &self.instants {
            out.push(json!({
                "name": i.name,
                "cat": i.cat,
                "ph": "i",
                "s": "t",
                "ts": i.ts_us + offset_us,
                "pid": pid,
                "tid": tid,
                "args": {"info": i.arg},
            }));
        }
        out
    }
}

/// Serialize a histogram's shape: count, mean and the tail percentiles the
/// report layer prints.
pub fn hist_json(h: &Histogram) -> Value {
    json!({
        "count": h.count(),
        "min": h.min(),
        "max": h.max(),
        "mean": h.mean(),
        "p50": h.value_at_percentile(50.0),
        "p90": h.value_at_percentile(90.0),
        "p99": h.value_at_percentile(99.0),
        "p999": h.value_at_percentile(99.9),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_counts_exact_timing_sparse() {
        let mut p = SimProfiler::new();
        for _ in 0..160 {
            let t0 = p.dispatch_begin();
            p.dispatch_end(0, t0, 5);
        }
        let k = &p.kind_stats()[0];
        assert_eq!(k.count, 160);
        assert_eq!(k.timed, 160 / SAMPLE_EVERY as u64);
        assert_eq!(p.queue_depth.count(), k.timed);
    }

    #[test]
    fn windows_pair_and_flush() {
        let mut p = SimProfiler::new();
        p.open_window(7, "sw0:1".into());
        p.open_window(9, "sw2:0".into());
        p.close_window(7);
        assert_eq!(p.spans().len(), 1);
        p.finish(); // still-open window 9 flushes
        assert_eq!(p.spans().len(), 2);
        assert!(p.spans().iter().all(|s| s.name == "link_down"));
        p.close_window(42); // unknown key is a no-op
        assert_eq!(p.spans_dropped(), 0);
    }

    #[test]
    fn summary_and_trace_shapes() {
        let mut p = SimProfiler::new();
        for _ in 0..32 {
            let t0 = p.dispatch_begin();
            p.dispatch_end(4, t0, 2);
        }
        p.ecn_mark(4096);
        p.drop_at(90_000);
        p.pause(12_000);
        let t0 = Instant::now();
        p.span("control_tick", "control", t0, "sim_us=50".into());
        p.instant("link_down", "fault", "sw1:2".into());
        let summary = p.summary_json(QueueStats::default());
        let kinds = summary["event_kinds"].as_array().unwrap();
        assert_eq!(kinds.len(), 1);
        assert_eq!(kinds[0]["kind"].as_str(), Some("control_tick"));
        assert_eq!(kinds[0]["count"].as_u64(), Some(32));
        assert_eq!(summary["ecn_mark_qlen"]["count"].as_u64(), Some(1));
        let evs = p.trace_events(100.0, 1, 3);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0]["ph"].as_str(), Some("X"));
        assert_eq!(evs[1]["ph"].as_str(), Some("i"));
        assert!(evs[0]["ts"].as_f64().unwrap() >= 100.0);
    }
}
