//! End-to-end behavioural tests of switch mechanisms: DWRR weight
//! enforcement, ECMP load balancing, PFC hysteresis and buffer release.

use netsim::ids::{FlowId, PRIO_RDMA, PRIO_TCP};
use netsim::prelude::*;
use std::any::Any;

/// Driver that keeps a class's NIC queue saturated with data to `dst`.
struct Saturator {
    dst: NodeId,
    prio: Prio,
    flow: u64,
    sent: u64,
}

impl NicDriver for Saturator {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        // Keep well ahead of the drain rate (25G drains ~12 pkts per 5 us).
        while ctx.egress_backlog_bytes(self.prio) < 64 * 1048 {
            let ecn = if self.prio == PRIO_RDMA {
                Ecn::Ect
            } else {
                Ecn::NotEct
            };
            let pkt = Packet::data(
                FlowId(self.flow),
                ctx.host(),
                self.dst,
                self.prio,
                self.sent * 1000,
                1000,
                false,
                ecn,
            );
            self.sent += 1;
            ctx.send(pkt);
        }
        ctx.set_timer_after(SimTime::from_us(5), 0);
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts received bytes per priority.
struct PrioSink;
impl NicDriver for PrioSink {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
    fn on_timer(&mut self, _t: u64, _c: &mut HostCtx<'_>) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn dwrr_enforces_configured_split_under_saturation() {
    // Two senders saturate both classes into one receiver; the egress port
    // must split bandwidth ~30/70 between TCP and RDMA.
    let mut cfg = SimConfig::default();
    cfg.port = PortConfig::default().with_tcp_rdma_split(30, 70);
    // Disable marking/PFC side effects that would throttle senders: big
    // thresholds, huge buffer.
    cfg.port.ecn[PRIO_RDMA as usize] = None;
    cfg.buffer_bytes = 1 << 30;
    cfg.port.max_queue_bytes[PRIO_TCP as usize] = 1 << 28;
    let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    sim.set_driver(hosts[2], Box::new(PrioSink));
    sim.set_driver(
        hosts[0],
        Box::new(Saturator {
            dst: hosts[2],
            prio: PRIO_TCP,
            flow: 1,
            sent: 0,
        }),
    );
    sim.set_driver(
        hosts[1],
        Box::new(Saturator {
            dst: hosts[2],
            prio: PRIO_RDMA,
            flow: 2,
            sent: 0,
        }),
    );
    for h in &hosts[..2] {
        sim.with_driver(*h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    }
    sim.run_until(SimTime::from_ms(20));
    let sw = sim.core().topo.switches()[0];
    let tcp = sim.core().queue_telem(sw, PortId(2), PRIO_TCP).tx_bytes as f64;
    let rdma = sim.core().queue_telem(sw, PortId(2), PRIO_RDMA).tx_bytes as f64;
    let rdma_share = rdma / (tcp + rdma);
    assert!(
        (rdma_share - 0.7).abs() < 0.03,
        "RDMA share {rdma_share:.3}, expected ~0.70"
    );
}

#[test]
fn ecmp_spreads_flows_over_spines() {
    // Many flows from one rack to another: the two leaf uplinks must both
    // carry a nontrivial share.
    let topo = TopologySpec::paper_testbed().build();
    let mut cfg = SimConfig::default();
    cfg.control_interval = None;
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    // Rack 0 = hosts 0..6 (6 per leaf), rack 3 = hosts 18..24.
    struct Burst {
        dst: NodeId,
        flow: u64,
    }
    impl NicDriver for Burst {
        fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
        fn on_timer(&mut self, t: u64, ctx: &mut HostCtx<'_>) {
            // 64 flows of 20 packets each from this host.
            let _ = t;
            for f in 0..64u64 {
                for i in 0..20u64 {
                    ctx.send(Packet::data(
                        FlowId(self.flow * 1000 + f),
                        ctx.host(),
                        self.dst,
                        PRIO_RDMA,
                        i * 1000,
                        1000,
                        i == 19,
                        Ecn::Ect,
                    ));
                }
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    for k in 0..6 {
        sim.set_driver(
            hosts[k],
            Box::new(Burst {
                dst: hosts[18 + k],
                flow: k as u64 + 1,
            }),
        );
        sim.set_driver(hosts[18 + k], Box::new(PrioSink));
        sim.with_driver(hosts[k], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    }
    sim.run_until(SimTime::from_ms(20));
    // Leaf 0's two uplink ports are the last two ports (6 host + 2 spine).
    let leaf0 = sim.core().topo.switches()[0];
    let up0 = sim.core().queue_telem(leaf0, PortId(6), PRIO_RDMA).tx_bytes as f64;
    let up1 = sim.core().queue_telem(leaf0, PortId(7), PRIO_RDMA).tx_bytes as f64;
    let total = up0 + up1;
    assert!(total > 0.0);
    let frac = up0 / total;
    assert!(
        (0.25..=0.75).contains(&frac),
        "ECMP badly imbalanced: uplink0 carries {frac:.2} of bytes"
    );
}

#[test]
fn pfc_pause_resume_cycles_and_buffer_returns_to_zero() {
    // A burst overwhelms the switch; PFC pauses the sender, the burst
    // drains, PFC resumes, and the shared buffer is fully released.
    let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
    let mut cfg = SimConfig::default();
    cfg.buffer_bytes = 256 * 1024; // tiny buffer: PFC must engage
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    struct BigBurst {
        dst: NodeId,
    }
    impl NicDriver for BigBurst {
        fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
            for i in 0..2000u64 {
                ctx.send(Packet::data(
                    FlowId(1),
                    ctx.host(),
                    self.dst,
                    PRIO_RDMA,
                    i * 1000,
                    1000,
                    i == 1999,
                    Ecn::Ect,
                ));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    sim.set_driver(hosts[2], Box::new(PrioSink));
    sim.set_driver(hosts[0], Box::new(BigBurst { dst: hosts[2] }));
    sim.set_driver(hosts[1], Box::new(BigBurst { dst: hosts[2] }));
    for h in &hosts[..2] {
        sim.with_driver(*h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    }
    sim.run_until(SimTime::from_ms(20));
    let sw = sim.core().topo.switches()[0];
    assert!(
        sim.core().total_pfc_pauses >= 2,
        "both ingresses must pause"
    );
    assert_eq!(sim.core().lossless_drops, 0);
    assert_eq!(
        sim.core().buffer_used(sw),
        0,
        "all buffered bytes must be released after the burst drains"
    );
    // All 4000 packets eventually left the switch.
    assert_eq!(
        sim.core().queue_telem(sw, PortId(2), PRIO_RDMA).tx_pkts,
        4000
    );
}

#[test]
fn strict_priority_control_class_preempts_data() {
    // With a saturated RDMA class, a control packet (prio 2, weight 0)
    // must still cross the switch almost immediately.
    let topo = TopologySpec::single_switch(3, 25_000_000_000, SimTime::from_ns(500)).build();
    let mut cfg = SimConfig::default();
    cfg.buffer_bytes = 1 << 30;
    cfg.port.ecn[PRIO_RDMA as usize] = None;
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    use std::cell::RefCell;
    use std::rc::Rc;
    struct TimedSink {
        got_ctrl: Rc<RefCell<Option<SimTime>>>,
    }
    impl NicDriver for TimedSink {
        fn on_packet(&mut self, p: &Packet, ctx: &mut HostCtx<'_>) {
            if p.prio == netsim::ids::PRIO_CTRL && self.got_ctrl.borrow().is_none() {
                *self.got_ctrl.borrow_mut() = Some(ctx.now());
            }
        }
        fn on_timer(&mut self, _t: u64, _c: &mut HostCtx<'_>) {}
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let got = Rc::new(RefCell::new(None));
    sim.set_driver(
        hosts[2],
        Box::new(TimedSink {
            got_ctrl: got.clone(),
        }),
    );
    sim.set_driver(
        hosts[0],
        Box::new(Saturator {
            dst: hosts[2],
            prio: PRIO_RDMA,
            flow: 1,
            sent: 0,
        }),
    );
    sim.with_driver(hosts[0], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    // Let a deep RDMA queue build, then inject one control packet.
    sim.run_until(SimTime::from_ms(2));
    struct OneCtrl {
        dst: NodeId,
    }
    impl NicDriver for OneCtrl {
        fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
            ctx.send(Packet::cnp(
                FlowId(9),
                ctx.host(),
                self.dst,
                netsim::ids::PRIO_CTRL,
            ));
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    sim.set_driver(hosts[1], Box::new(OneCtrl { dst: hosts[2] }));
    let t_send = sim.now();
    sim.with_driver(hosts[1], |_, ctx| {
        let now = ctx.now();
        ctx.set_timer_at(now, 0);
    });
    sim.run_until(t_send + SimTime::from_us(100));
    let arrival = got.borrow().expect("control packet must arrive");
    let latency = arrival - t_send;
    assert!(
        latency < SimTime::from_us(5),
        "strict-priority latency {latency} despite deep data queue"
    );
}

#[test]
fn tracer_captures_marks_pauses_and_queue_depths() {
    // Heavy incast with a tiny marking threshold and a small buffer: the
    // tracer must see enqueues, dequeues, CE marks and PFC pauses, with
    // consistent queue depths.
    let topo = TopologySpec::single_switch(5, 25_000_000_000, SimTime::from_ns(500)).build();
    let mut cfg = SimConfig::default();
    cfg.buffer_bytes = 512 * 1024;
    cfg.port.ecn[PRIO_RDMA as usize] = Some(EcnConfig::new(10_000, 10_000, 1.0));
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    let sw = sim.core().topo.switches()[0];
    sim.set_tracer(Tracer::new(TraceFilter::default(), 100_000));

    struct Burst {
        dst: NodeId,
    }
    impl NicDriver for Burst {
        fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
            for i in 0..500u64 {
                ctx.send(Packet::data(
                    FlowId(ctx.host().0 as u64),
                    ctx.host(),
                    self.dst,
                    PRIO_RDMA,
                    i * 1000,
                    1000,
                    i == 499,
                    Ecn::Ect,
                ));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    sim.set_driver(hosts[4], Box::new(PrioSink));
    for &h in &hosts[..4] {
        sim.set_driver(h, Box::new(Burst { dst: hosts[4] }));
        sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    }
    sim.run_until(SimTime::from_ms(10));

    let tracer = sim.tracer_mut().unwrap();
    assert!(tracer.matched > 1000);
    let events: Vec<TraceEvent> = tracer.take();
    let count = |k: TraceKind| events.iter().filter(|e| e.kind == k).count();
    assert!(count(TraceKind::Enqueue) > 0);
    assert!(count(TraceKind::Dequeue) > 0);
    assert!(count(TraceKind::CeMark) > 0, "tiny threshold must mark");
    assert!(count(TraceKind::PfcPause) > 0, "small buffer must pause");
    assert!(count(TraceKind::PfcResume) > 0, "pauses must resume");
    // Times are nondecreasing and switch-queue depths sane.
    for w in events.windows(2) {
        assert!(w[0].at <= w[1].at);
    }
    assert!(events
        .iter()
        .filter(|e| e.node == sw)
        .all(|e| e.qlen_bytes <= 512 * 1024));
}
