//! Property-based tests of the simulator's core invariants.

use netsim::buffer::SharedBuffer;
use netsim::event::{Event, EventQueue, HeapEventQueue};
use netsim::ids::{FlowId, NodeId};
use netsim::queues::{Dwrr, EcnConfig};
use netsim::routing::RouteTable;
use netsim::time::{tx_time, SimTime};
use netsim::topology::TopologySpec;
use proptest::prelude::*;

proptest! {
    /// The event queue pops events in nondecreasing time order, and events
    /// with identical times pop in insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime::from_ns(t),
                Event::HostTimer { host: NodeId(0), token: i as u64 },
            );
        }
        let mut last_time = SimTime::ZERO;
        let mut last_token_at_time: Option<u64> = None;
        while let Some(s) = q.pop() {
            prop_assert!(s.time >= last_time);
            if s.time != last_time {
                last_token_at_time = None;
            }
            if let Event::HostTimer { token, .. } = s.event {
                if let Some(prev) = last_token_at_time {
                    prop_assert!(token > prev, "FIFO violated among ties");
                }
                last_token_at_time = Some(token);
            }
            last_time = s.time;
        }
    }

    /// Differential test of the timing-wheel queue against the reference
    /// `BinaryHeap` queue: any interleaving of pushes and pops produces an
    /// identical pop sequence — same `(time, seq)` at every step, including
    /// FIFO order among same-timestamp ties. Times span all three wheel
    /// tiers (current bucket, in-wheel, overflow) and `tie` forces repeats
    /// of a recent timestamp so ties actually occur.
    #[test]
    fn wheel_queue_matches_reference_heap(
        ops in prop::collection::vec(
            (0u64..200_000_000_000, any::<bool>(), prop::option::of(0u8..4)),
            1..400,
        ),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut recent: Vec<u64> = Vec::new();
        for (i, &(t_ps, do_pop, tie)) in ops.iter().enumerate() {
            // Either a fresh time or an exact repeat of a recent one.
            let t_ps = match tie {
                Some(k) if !recent.is_empty() => recent[k as usize % recent.len()],
                _ => t_ps,
            };
            recent.push(t_ps);
            if recent.len() > 8 {
                recent.remove(0);
            }
            let t = SimTime::from_ps(t_ps);
            let ev = Event::HostTimer { host: NodeId(0), token: i as u64 };
            wheel.push(t, ev.clone());
            heap.push(t, ev);
            prop_assert_eq!(wheel.len(), heap.len());
            if do_pop {
                let a = wheel.pop().expect("just pushed");
                let b = heap.pop().expect("just pushed");
                prop_assert_eq!((a.time, a.seq), (b.time, b.seq));
            }
        }
        // Drain: both queues must agree to the very last event.
        loop {
            match (wheel.pop(), heap.pop()) {
                (Some(a), Some(b)) => prop_assert_eq!((a.time, a.seq), (b.time, b.seq)),
                (None, None) => break,
                _ => prop_assert!(false, "queues drained at different lengths"),
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// RED marking probability is monotone in queue length and in [0, 1].
    #[test]
    fn red_probability_monotone(
        kmin in 0u64..10_000_000,
        span in 0u64..10_000_000,
        pmax in 0.0f64..=1.0,
        q1 in 0u64..20_000_000,
        q2 in 0u64..20_000_000,
    ) {
        let cfg = EcnConfig::new(kmin, kmin + span, pmax);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = cfg.mark_probability(lo);
        let p_hi = cfg.mark_probability(hi);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo <= p_hi + 1e-12);
    }

    /// Buffer accounting never goes negative or exceeds capacity when the
    /// caller respects `can_admit`, and Xoff shrinks as the buffer fills.
    #[test]
    fn buffer_accounting_conserves(ops in prop::collection::vec((any::<bool>(), 1u32..100_000), 1..300)) {
        let mut b = SharedBuffer::new(1_000_000, 0.125, 0.5);
        let mut charged: Vec<u32> = Vec::new();
        let mut prev_xoff_when_filling: Option<(u64, u64)> = None;
        for (is_charge, size) in ops {
            if is_charge {
                if b.can_admit(size) {
                    let before = (b.used, b.xoff_threshold());
                    b.charge(size);
                    charged.push(size);
                    // Xoff is nonincreasing in `used`.
                    if let Some((u0, x0)) = prev_xoff_when_filling {
                        if b.used > u0 {
                            prop_assert!(b.xoff_threshold() <= x0);
                        }
                    }
                    prev_xoff_when_filling = Some((before.0, before.1));
                }
            } else if let Some(sz) = charged.pop() {
                b.release(sz);
            }
            prop_assert!(b.used <= b.total);
            let outstanding: u64 = charged.iter().map(|&s| s as u64).sum();
            prop_assert_eq!(b.used, outstanding);
        }
    }

    /// Serialization time is monotone and (near-)additive in bytes.
    #[test]
    fn tx_time_monotone_additive(a in 1u64..1_000_000, b in 1u64..1_000_000, rate in 1_000_000u64..400_000_000_000) {
        let ta = tx_time(a, rate);
        let tb = tx_time(b, rate);
        let tab = tx_time(a + b, rate);
        prop_assert!(tab >= ta);
        prop_assert!(tab >= tb);
        // Additivity up to 1 ps rounding per term.
        let sum = ta + tb;
        let diff = tab.as_ps().abs_diff(sum.as_ps());
        prop_assert!(diff <= 2, "diff {diff} ps");
    }

    /// DWRR never picks an empty or paused class.
    #[test]
    fn dwrr_never_picks_invalid(
        weights in prop::collection::vec(0u32..10, 2..6),
        heads in prop::collection::vec(prop::option::of(64u32..9000), 2..6),
        paused in any::<u8>(),
        picks in 1usize..200,
    ) {
        prop_assume!(weights.len() == heads.len());
        prop_assume!(weights.iter().any(|&w| w > 0));
        let mut d = Dwrr::new(weights);
        for _ in 0..picks {
            if let Some(i) = d.pick(&heads, paused) {
                prop_assert!(heads[i].is_some(), "picked empty class");
                prop_assert_eq!(paused & (1 << (i as u8)), 0, "picked paused class");
            }
        }
    }

    /// DRR fairness: while any weighted class has an available, unpaused
    /// head, `pick` never returns `None` (the `max_scan` bound can only be
    /// reached when nothing is servable, which the fast path now answers
    /// directly), and with fixed heads every servable weighted class is
    /// eventually served — no starvation from deficit/grant bookkeeping.
    #[test]
    fn dwrr_servable_weighted_class_is_eventually_served(
        weights in prop::collection::vec(1u32..10, 2..6),
        heads in prop::collection::vec(prop::option::of(64u32..9000), 2..6),
        paused in any::<u8>(),
    ) {
        prop_assume!(weights.len() == heads.len());
        let n = weights.len();
        let servable: Vec<usize> = (0..n)
            .filter(|&i| heads[i].is_some() && paused & (1 << i) == 0)
            .collect();
        prop_assume!(!servable.is_empty());
        let mut d = Dwrr::new(weights);
        let mut seen = vec![false; n];
        // Generous budget: a class of weight w accrues w*1600 bytes of
        // deficit per round, so every servable class is served within a
        // handful of rounds even while small-packet classes burn many
        // picks per visit.
        for _ in 0..500_000 {
            let got = d.pick(&heads, paused);
            prop_assert!(got.is_some(), "None while a weighted class is servable");
            seen[got.unwrap()] = true;
            if servable.iter().all(|&i| seen[i]) {
                break;
            }
        }
        for &i in &servable {
            prop_assert!(seen[i], "servable weighted class {i} starved");
        }
    }

    /// Per DRR, a class's deficit resets when its queue drains: a pick with
    /// every queue empty zeroes all deficits (the no-servable fast path),
    /// and a single drained class loses its credit as soon as the round
    /// pointer visits it while empty.
    #[test]
    fn dwrr_deficit_resets_on_drain(
        weights in prop::collection::vec(1u32..10, 2..6),
        sizes in prop::collection::vec(64u32..9000, 2..6),
        picks in 1usize..50,
    ) {
        prop_assume!(weights.len() == sizes.len());
        let n = weights.len();
        let heads: Vec<Option<u32>> = sizes.iter().map(|&s| Some(s)).collect();
        let mut d = Dwrr::new(weights);
        for _ in 0..picks {
            let _ = d.pick(&heads, 0);
        }
        // Full drain: one pick with all queues empty resets every deficit.
        let empty: Vec<Option<u32>> = vec![None; n];
        prop_assert!(d.pick(&empty, 0).is_none());
        for i in 0..n {
            prop_assert_eq!(d.deficit(i), 0, "class {} kept deficit across drain", i);
        }
        // Partial drain: rebuild some credit, empty only class 0, and keep
        // serving the others — class 0's deficit must reset once the round
        // pointer passes it (bounded by the same generous pick budget).
        for _ in 0..picks {
            let _ = d.pick(&heads, 0);
        }
        let mut partial = heads.clone();
        partial[0] = None;
        let mut reset = d.deficit(0) == 0;
        for _ in 0..500_000 {
            if reset {
                break;
            }
            let _ = d.pick(&partial, 0);
            reset = d.deficit(0) == 0;
        }
        prop_assert!(reset, "drained class 0 kept stale deficit");
    }

    /// Every (switch, host) pair in a random leaf-spine fabric has at least
    /// one route, and following next-hops always reaches the destination
    /// within a hop bound (no loops).
    #[test]
    fn routing_reaches_destination(
        n_leaf in 1usize..5,
        n_spine in 1usize..4,
        hosts_per_leaf in 1usize..5,
        flow in any::<u64>(),
    ) {
        let spec = TopologySpec::LeafSpine {
            n_leaf,
            n_spine,
            hosts_per_leaf,
            host_bps: 25_000_000_000,
            fabric_bps: 100_000_000_000,
            host_delay: SimTime::from_ns(500),
            fabric_delay: SimTime::from_ns(500),
        };
        let topo = spec.build();
        let rt = RouteTable::build(&topo);
        let hosts = topo.hosts().to_vec();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                // Walk the route.
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let port = rt.next_hop(cur, dst, FlowId(flow));
                    cur = topo.port(cur, port).peer_node;
                    hops += 1;
                    prop_assert!(hops <= 6, "routing loop {src} -> {dst}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary two-host transfers are fully delivered regardless of link
    /// speed, packet count and propagation delay (conservation of packets).
    #[test]
    fn fabric_conserves_packets(
        rate_gbps in 1u64..200,
        n_pkts in 1u32..300,
        delay_ns in 1u64..5_000,
    ) {
        use netsim::prelude::*;
        use std::cell::RefCell;
        use std::rc::Rc;
        use std::any::Any;

        struct Sink { n: Rc<RefCell<u32>> }
        impl NicDriver for Sink {
            fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {
                *self.n.borrow_mut() += 1;
            }
            fn on_timer(&mut self, _t: u64, _c: &mut HostCtx<'_>) {}
            fn as_any_mut(&mut self) -> &mut dyn Any { self }
        }
        struct Blast { dst: NodeId, n: u32 }
        impl NicDriver for Blast {
            fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
                let src = ctx.host();
                for i in 0..self.n {
                    ctx.send(Packet::data(
                        FlowId(1), src, self.dst, netsim::ids::PRIO_RDMA,
                        i as u64 * 1000, 1000, i + 1 == self.n, Ecn::Ect,
                    ));
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any { self }
        }

        let topo = TopologySpec::single_switch(2, rate_gbps * 1_000_000_000, SimTime::from_ns(delay_ns)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
        let got = Rc::new(RefCell::new(0u32));
        sim.set_driver(hosts[1], Box::new(Sink { n: got.clone() }));
        sim.set_driver(hosts[0], Box::new(Blast { dst: hosts[1], n: n_pkts }));
        sim.with_driver(hosts[0], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
        sim.run_until(SimTime::from_ms(100));
        prop_assert_eq!(*got.borrow() + sim.core().total_drops as u32, n_pkts);
        prop_assert_eq!(sim.core().total_drops, 0);
    }
}
