//! Link-failure injection: traffic steers around failed fabric links after
//! route recomputation, unroutable traffic is counted, and restoration
//! restarts the transmitters.

use netsim::ids::{FlowId, PRIO_RDMA};
use netsim::prelude::*;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

struct Sink {
    got: Rc<RefCell<u32>>,
}
impl NicDriver for Sink {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {
        *self.got.borrow_mut() += 1;
    }
    fn on_timer(&mut self, _t: u64, _c: &mut HostCtx<'_>) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends one packet per `flow` id in 0..n at every timer tick.
struct Pulser {
    dst: NodeId,
    n: u64,
    seq: u64,
}
impl NicDriver for Pulser {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        for f in 0..self.n {
            ctx.send(Packet::data(
                FlowId(f + 1),
                ctx.host(),
                self.dst,
                PRIO_RDMA,
                self.seq * 1000,
                1000,
                false,
                Ecn::Ect,
            ));
        }
        self.seq += 1;
        ctx.set_timer_after(SimTime::from_us(50), 0);
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn cross_rack_setup() -> (Simulator, NodeId, NodeId, Rc<RefCell<u32>>) {
    // Testbed Clos: leaf0 has two spine uplinks (ports 6 and 7).
    let topo = TopologySpec::paper_testbed().build();
    let mut cfg = SimConfig::default();
    cfg.control_interval = None;
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    let src = hosts[0];
    let dst = hosts[hosts.len() - 1];
    let got = Rc::new(RefCell::new(0));
    sim.set_driver(dst, Box::new(Sink { got: got.clone() }));
    sim.set_driver(src, Box::new(Pulser { dst, n: 16, seq: 0 }));
    sim.with_driver(src, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    (sim, src, dst, got)
}

#[test]
fn traffic_steers_around_failed_uplink() {
    let (mut sim, _src, _dst, got) = cross_rack_setup();
    sim.run_until(SimTime::from_ms(2));
    let before = *got.borrow();
    assert!(before > 0);

    // Fail leaf0's first spine uplink: all 16 flows must re-hash onto the
    // surviving uplink and keep flowing, with nothing dropped.
    let leaf0 = sim.core().topo.switches()[0];
    sim.core_mut().set_link_state(leaf0, PortId(6), false);
    assert!(!sim.core().link_is_up(leaf0, PortId(6)));
    sim.run_until(SimTime::from_ms(6));
    let after = *got.borrow();
    assert!(
        after - before > 16 * 60,
        "traffic must keep flowing over the surviving uplink: {} -> {}",
        before,
        after
    );
    assert_eq!(sim.core().unroutable_drops, 0);
    // The failed uplink carries nothing new while down.
    let up6 = sim.core().queue(leaf0, PortId(6), PRIO_RDMA).telem.tx_pkts;
    sim.run_until(SimTime::from_ms(7));
    assert_eq!(
        sim.core().queue(leaf0, PortId(6), PRIO_RDMA).telem.tx_pkts,
        up6
    );
}

#[test]
fn total_partition_counts_unroutable_and_recovers_on_restore() {
    let (mut sim, _src, _dst, got) = cross_rack_setup();
    sim.run_until(SimTime::from_ms(1));
    let leaf0 = sim.core().topo.switches()[0];
    // Fail both uplinks: rack 0 is cut off from rack 3.
    sim.core_mut().set_link_state(leaf0, PortId(6), false);
    sim.core_mut().set_link_state(leaf0, PortId(7), false);
    sim.run_until(SimTime::from_ms(3));
    assert!(
        sim.core().unroutable_drops > 0,
        "cross-rack packets must be counted as unroutable"
    );
    let during = *got.borrow();
    // Restore one uplink: delivery resumes.
    sim.core_mut().set_link_state(leaf0, PortId(6), true);
    sim.run_until(SimTime::from_ms(6));
    assert!(
        *got.borrow() > during + 16 * 40,
        "delivery must resume after restoration"
    );
}
