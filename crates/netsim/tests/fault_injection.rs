//! Link-failure injection: traffic steers around failed fabric links after
//! route recomputation, unroutable traffic is counted, and restoration
//! restarts the transmitters.

use netsim::ids::{FlowId, PRIO_RDMA};
use netsim::prelude::*;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

struct Sink {
    got: Rc<RefCell<u32>>,
}
impl NicDriver for Sink {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {
        *self.got.borrow_mut() += 1;
    }
    fn on_timer(&mut self, _t: u64, _c: &mut HostCtx<'_>) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends one packet per `flow` id in 0..n at every timer tick.
struct Pulser {
    dst: NodeId,
    n: u64,
    seq: u64,
}
impl NicDriver for Pulser {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        for f in 0..self.n {
            ctx.send(Packet::data(
                FlowId(f + 1),
                ctx.host(),
                self.dst,
                PRIO_RDMA,
                self.seq * 1000,
                1000,
                false,
                Ecn::Ect,
            ));
        }
        self.seq += 1;
        ctx.set_timer_after(SimTime::from_us(50), 0);
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn cross_rack_setup() -> (Simulator, NodeId, NodeId, Rc<RefCell<u32>>) {
    // Testbed Clos: leaf0 has two spine uplinks (ports 6 and 7).
    let topo = TopologySpec::paper_testbed().build();
    let mut cfg = SimConfig::default();
    cfg.control_interval = None;
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    let src = hosts[0];
    let dst = hosts[hosts.len() - 1];
    let got = Rc::new(RefCell::new(0));
    sim.set_driver(dst, Box::new(Sink { got: got.clone() }));
    sim.set_driver(src, Box::new(Pulser { dst, n: 16, seq: 0 }));
    sim.with_driver(src, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    (sim, src, dst, got)
}

#[test]
fn traffic_steers_around_failed_uplink() {
    let (mut sim, _src, _dst, got) = cross_rack_setup();
    sim.run_until(SimTime::from_ms(2));
    let before = *got.borrow();
    assert!(before > 0);

    // Fail leaf0's first spine uplink: all 16 flows must re-hash onto the
    // surviving uplink and keep flowing, with nothing dropped.
    let leaf0 = sim.core().topo.switches()[0];
    sim.core_mut().set_link_state(leaf0, PortId(6), false);
    assert!(!sim.core().link_is_up(leaf0, PortId(6)));
    sim.run_until(SimTime::from_ms(6));
    let after = *got.borrow();
    assert!(
        after - before > 16 * 60,
        "traffic must keep flowing over the surviving uplink: {} -> {}",
        before,
        after
    );
    assert_eq!(sim.core().unroutable_drops, 0);
    // The failed uplink carries nothing new while down.
    let up6 = sim.core().queue_telem(leaf0, PortId(6), PRIO_RDMA).tx_pkts;
    sim.run_until(SimTime::from_ms(7));
    assert_eq!(
        sim.core().queue_telem(leaf0, PortId(6), PRIO_RDMA).tx_pkts,
        up6
    );
}

/// Blasts `n` packets at its first timer tick, then stays quiet.
struct Blaster {
    dst: NodeId,
    n: u32,
}
impl NicDriver for Blaster {
    fn on_packet(&mut self, _p: &Packet, _c: &mut HostCtx<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        for i in 0..self.n {
            ctx.send(Packet::data(
                FlowId(ctx.host().0 as u64 + 1),
                ctx.host(),
                self.dst,
                PRIO_RDMA,
                i as u64 * 1000,
                1000,
                i == self.n - 1,
                Ecn::Ect,
            ));
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn in_flight_packets_toward_downed_link_are_dropped_not_delivered_or_leaked() {
    // A 50 us propagation delay keeps ~60 packets "on the wire" at any
    // moment; failing the receiver link mid-stream must lose exactly the
    // in-flight ones — counted, not delivered, and with no buffer bytes
    // leaked at the switch.
    let topo = TopologySpec::single_switch(2, 10_000_000_000, SimTime::from_us(50)).build();
    let mut cfg = SimConfig::default();
    cfg.control_interval = None;
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    let got = Rc::new(RefCell::new(0));
    sim.set_driver(hosts[1], Box::new(Sink { got: got.clone() }));
    sim.set_driver(
        hosts[0],
        Box::new(Blaster {
            dst: hosts[1],
            n: 100,
        }),
    );
    sim.with_driver(hosts[0], |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    sim.run_until(SimTime::from_us(150));
    let delivered_at_cut = *got.borrow();
    assert!(delivered_at_cut > 0, "stream was flowing before the cut");
    let sw = sim.core().topo.switches()[0];
    sim.core_mut().set_link_state(sw, PortId(1), false);
    sim.run_until(SimTime::from_ms(2));
    let delivered = *got.borrow();
    assert_eq!(delivered, delivered_at_cut, "nothing crosses a downed link");
    let dropped = sim.core().fault_drops;
    assert!(dropped > 10, "the in-flight packets are lost: {dropped}");
    let queued = sim.core().queue(sw, PortId(1), PRIO_RDMA).len() as u64;
    assert_eq!(
        delivered as u64 + dropped + queued,
        100,
        "every packet is delivered, fault-dropped or still queued"
    );
    // No shared-buffer leak: with the transmitter idle, the switch's buffer
    // occupancy is exactly what sits in its queues.
    assert_eq!(
        sim.core().buffer_used(sw),
        sim.core().queue(sw, PortId(1), PRIO_RDMA).bytes()
            + sim.core().queue(sw, PortId(0), PRIO_RDMA).bytes()
    );
}

#[test]
fn link_flap_cannot_leave_a_port_permanently_paused() {
    // Overload a single receiver so the switch holds the senders in PFC
    // pause, then flap a paused sender's link. Pause state on both ends is
    // cleared on link-down and pauses landing on a downed port are ignored,
    // so after restoration everything that was not physically lost in
    // flight must still be delivered — a wedged (permanently paused) sender
    // would strand its backlog forever.
    let topo = TopologySpec::single_switch(9, 25_000_000_000, SimTime::from_ns(500)).build();
    let mut cfg = SimConfig::default();
    cfg.control_interval = None;
    cfg.buffer_bytes = 512 * 1024; // force PFC
    let mut sim = Simulator::new(topo, cfg);
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    let got = Rc::new(RefCell::new(0));
    sim.set_driver(hosts[8], Box::new(Sink { got: got.clone() }));
    for &h in &hosts[..8] {
        sim.set_driver(
            h,
            Box::new(Blaster {
                dst: hosts[8],
                n: 1000,
            }),
        );
        sim.with_driver(h, |_, ctx| ctx.set_timer_at(SimTime::ZERO, 0));
    }
    // Mid-overload the fabric is pausing senders almost continuously.
    sim.run_until(SimTime::from_ms(1));
    assert!(sim.core().total_pfc_pauses > 0, "PFC must be active");
    let sw = sim.core().topo.switches()[0];
    sim.core_mut().set_link_state(sw, PortId(0), false);
    sim.run_until(SimTime::from_ms(1) + SimTime::from_us(20));
    sim.core_mut().set_link_state(sw, PortId(0), true);
    sim.run_until(SimTime::from_ms(100));
    let delivered = *got.borrow() as u64;
    let lost = sim.core().fault_drops;
    assert_eq!(
        delivered + lost,
        8000,
        "everything not lost in flight is eventually delivered \
         (a permanently paused port would strand its backlog)"
    );
    assert!(
        sim.core().pfc_pause_time(hosts[0], PortId(0), PRIO_RDMA) < SimTime::from_ms(99),
        "the flapped sender must not sit paused for the rest of the run"
    );
}

#[test]
fn total_partition_counts_unroutable_and_recovers_on_restore() {
    let (mut sim, _src, _dst, got) = cross_rack_setup();
    sim.run_until(SimTime::from_ms(1));
    let leaf0 = sim.core().topo.switches()[0];
    // Fail both uplinks: rack 0 is cut off from rack 3.
    sim.core_mut().set_link_state(leaf0, PortId(6), false);
    sim.core_mut().set_link_state(leaf0, PortId(7), false);
    sim.run_until(SimTime::from_ms(3));
    assert!(
        sim.core().unroutable_drops > 0,
        "cross-rack packets must be counted as unroutable"
    );
    let during = *got.borrow();
    // Restore one uplink: delivery resumes.
    sim.core_mut().set_link_state(leaf0, PortId(6), true);
    sim.run_until(SimTime::from_ms(6));
    assert!(
        *got.borrow() > during + 16 * 40,
        "delivery must resume after restoration"
    );
}
