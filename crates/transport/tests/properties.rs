//! Property-based tests for the transports: CC state machines never produce
//! invalid rates/windows under arbitrary event sequences, and end-to-end
//! delivery holds for arbitrary message sets.

use netsim::prelude::*;
use proptest::prelude::*;
use transport::dcqcn::{DcqcnConfig, DcqcnState};
use transport::window::{WindowConfig, WindowFlavor, WindowState};
use transport::{CcKind, FctCollector, Message, StackConfig};

#[derive(Debug, Clone)]
enum DcqcnEvent {
    Cnp,
    AlphaTimer,
    RateTimer,
    Bytes(u32),
}

fn arb_dcqcn_event() -> impl Strategy<Value = DcqcnEvent> {
    prop_oneof![
        Just(DcqcnEvent::Cnp),
        Just(DcqcnEvent::AlphaTimer),
        Just(DcqcnEvent::RateTimer),
        (1u32..2_000_000).prop_map(DcqcnEvent::Bytes),
    ]
}

proptest! {
    /// Under any event sequence, DCQCN's rate stays within
    /// [min_rate, line_rate] and alpha within [0, 1].
    #[test]
    fn dcqcn_invariants(events in prop::collection::vec(arb_dcqcn_event(), 0..300)) {
        let cfg = DcqcnConfig::default();
        let line = 25e9;
        let mut s = DcqcnState::new(line, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for ev in events {
            now += SimTime::from_us(37);
            match ev {
                DcqcnEvent::Cnp => s.on_cnp(&cfg, now),
                DcqcnEvent::AlphaTimer => s.on_alpha_timer(&cfg, now),
                DcqcnEvent::RateTimer => s.on_rate_timer(&cfg, now, line),
                DcqcnEvent::Bytes(b) => s.on_bytes_sent(&cfg, b as u64, line),
            }
            prop_assert!(s.rate_c >= cfg.min_rate_bps - 1.0);
            prop_assert!(s.rate_c <= line + 1.0);
            prop_assert!(s.rate_t <= line + 1.0);
            prop_assert!((0.0..=1.0).contains(&s.alpha));
            prop_assert!(s.pace_delay(1048) > SimTime::ZERO);
        }
    }

    /// Under any cumulative-ACK sequence, the window stays >= 1 MSS and
    /// finite, and dupack bookkeeping never underflows.
    #[test]
    fn window_invariants(
        acks in prop::collection::vec((any::<u64>(), any::<bool>()), 0..300),
        flavor_dctcp in any::<bool>(),
    ) {
        let cfg = WindowConfig::default();
        let flavor = if flavor_dctcp { WindowFlavor::Dctcp } else { WindowFlavor::Reno };
        let mut s = WindowState::new(flavor, &cfg, 1000, SimTime::ZERO);
        let mut una = 0u64;
        let mut nxt = 0u64;
        let mut now = SimTime::ZERO;
        for (raw_ack, ce) in acks {
            now += SimTime::from_us(13);
            // Keep the ack within a plausible window of the send state.
            let ack = una + (raw_ack % 100_000);
            nxt = nxt.max(ack).max(una + (raw_ack % 50_000));
            s.on_ack(&cfg, ack, ce, una, nxt, now);
            una = una.max(ack);
            prop_assert!(s.cwnd >= s.mss - 1.0);
            prop_assert!(s.cwnd <= cfg.max_cwnd_bytes + 1.0);
            prop_assert!(s.cwnd.is_finite());
            prop_assert!((0.0..=1.0).contains(&s.alpha));
        }
        s.on_rto();
        prop_assert_eq!(s.cwnd, s.mss);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any batch of RDMA messages between random host pairs is delivered
    /// exactly once, losslessly.
    #[test]
    fn all_messages_complete(
        msgs in prop::collection::vec((0usize..6, 0usize..6, 1u64..300_000, 0u64..2_000), 1..25),
    ) {
        let topo = TopologySpec::single_switch(6, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        let mut expected = 0;
        for (s, d, bytes, at_us) in msgs {
            if s == d {
                continue;
            }
            transport::schedule_message(
                &mut sim,
                hosts[s],
                SimTime::from_us(at_us),
                Message::new(hosts[d], bytes, CcKind::Dcqcn),
            );
            expected += 1;
        }
        sim.run_until(SimTime::from_ms(60));
        prop_assert_eq!(fct.borrow().completed_count(), expected);
        prop_assert_eq!(fct.borrow().unfinished().count(), 0);
        prop_assert_eq!(sim.core().lossless_drops, 0);
    }

    /// TCP Reno delivers in full even through a loss-inducing shallow
    /// drop-tail queue (go-back-N correctness under arbitrary drops).
    #[test]
    fn reno_survives_drops(
        queue_kb in 16u64..128,
        n_senders in 2usize..5,
        bytes in 100_000u64..1_000_000,
    ) {
        let topo = TopologySpec::single_switch(6, 10_000_000_000, SimTime::from_ns(500)).build();
        let mut cfg = SimConfig::default();
        cfg.port.max_queue_bytes[0] = queue_kb * 1024;
        let mut sim = Simulator::new(topo, cfg);
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        for s in 0..n_senders {
            transport::schedule_message(
                &mut sim,
                hosts[s],
                SimTime::ZERO,
                Message::new(hosts[5], bytes, CcKind::Reno),
            );
        }
        sim.run_until(SimTime::from_ms(400));
        prop_assert_eq!(fct.borrow().completed_count(), n_senders,
            "drops={} unfinished={}", sim.core().total_drops, fct.borrow().unfinished().count());
    }
}
