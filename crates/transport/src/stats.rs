//! Flow-completion-time collection and summary statistics.
//!
//! Every flow started anywhere in the simulation registers here; the
//! receiving stack marks it complete when the last in-order byte lands.
//! Experiment harnesses then slice the records by size class / time window /
//! priority to produce the paper's FCT tables.

use netsim::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One flow's life record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Globally unique flow id.
    pub flow: FlowId,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Message size in bytes.
    pub bytes: u64,
    /// Traffic class the data travelled on.
    pub prio: Prio,
    /// Application-defined tag (used by closed-loop app models).
    pub tag: u64,
    /// Time the sender started the flow.
    pub start: SimTime,
    /// Time the receiver consumed the final in-order byte, if finished.
    pub end: Option<SimTime>,
}

impl FlowRecord {
    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<SimTime> {
        self.end.map(|e| e - self.start)
    }
}

/// Shared, interior-mutable handle to an [`FctCollector`].
pub type SharedFct = Rc<RefCell<FctCollector>>;

/// Central registry of all flows in a run.
#[derive(Default, Debug)]
pub struct FctCollector {
    records: HashMap<u64, FlowRecord>,
    order: Vec<u64>,
    completed_count: usize,
}

impl FctCollector {
    /// Create an empty collector behind the usual shared handle.
    pub fn new_shared() -> SharedFct {
        Rc::new(RefCell::new(FctCollector::default()))
    }

    /// Reserve capacity for `n` additional flow records so registration
    /// during a pre-sized run never rehashes or reallocates.
    pub fn reserve(&mut self, n: usize) {
        self.records.reserve(n);
        self.order.reserve(n);
    }

    /// Register a new flow at start time. Records that arrive already
    /// completed (replayed traces, synthetic fixtures) count towards
    /// [`FctCollector::completed_count`] immediately.
    pub fn register(&mut self, rec: FlowRecord) {
        if rec.end.is_some() {
            self.completed_count += 1;
        }
        let prev = self.records.insert(rec.flow.0, rec);
        debug_assert!(prev.is_none(), "duplicate flow id {}", rec.flow);
        self.order.push(rec.flow.0);
    }

    /// Register a batch of flow-level backend completions
    /// ([`netsim::flowsim::FlowDone`]) as already-finished records, so the
    /// hybrid/flow fidelity modes feed the exact same FCT statistics
    /// pipeline (percentiles, size buckets, JSONL reports) the packet
    /// engine does.
    pub fn register_flowsim(&mut self, done: &[netsim::flowsim::FlowDone]) {
        self.reserve(done.len());
        for d in done {
            self.register(FlowRecord {
                flow: d.flow,
                src: d.src,
                dst: d.dst,
                bytes: d.bytes,
                prio: d.prio,
                tag: d.tag,
                start: d.start,
                end: Some(d.end),
            });
        }
    }

    /// Mark `flow` complete at `now`.
    pub fn complete(&mut self, flow: FlowId, now: SimTime) {
        let rec = self
            .records
            .get_mut(&flow.0)
            .expect("completing unregistered flow");
        debug_assert!(rec.end.is_none(), "flow completed twice");
        rec.end = Some(now);
        self.completed_count += 1;
    }

    /// Look up one flow.
    pub fn get(&self, flow: FlowId) -> Option<&FlowRecord> {
        self.records.get(&flow.0)
    }

    /// All records in registration order.
    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.order.iter().map(move |id| &self.records[id])
    }

    /// Completed flows only.
    pub fn completed(&self) -> impl Iterator<Item = &FlowRecord> {
        self.records().filter(|r| r.end.is_some())
    }

    /// Flows that were started but never finished (should be empty at the
    /// end of a well-formed experiment unless it was cut short).
    pub fn unfinished(&self) -> impl Iterator<Item = &FlowRecord> {
        self.records().filter(|r| r.end.is_none())
    }

    /// Number of completed flows.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Total number of registered flows.
    pub fn total_count(&self) -> usize {
        self.order.len()
    }

    /// Summarise the completed flows that match `filter`.
    pub fn stats(&self, filter: impl Fn(&FlowRecord) -> bool) -> FctStats {
        let fcts: Vec<f64> = self
            .completed()
            .filter(|r| filter(r))
            .map(|r| r.fct().unwrap().as_us_f64())
            .collect();
        FctStats::from_us(fcts)
    }

    /// Summarise completed flows whose size is in `[lo, hi)` bytes.
    pub fn stats_by_size(&self, lo: u64, hi: u64) -> FctStats {
        self.stats(|r| r.bytes >= lo && r.bytes < hi)
    }

    /// Export a whole-run summary — the hook run manifests use.
    pub fn summary(&self) -> FctSummary {
        FctSummary {
            total: self.total_count(),
            completed: self.completed_count(),
            unfinished: self.total_count() - self.completed_count(),
            overall: self.stats(|_| true),
        }
    }
}

/// Join the per-shard FCT records of one sharded run into a single
/// collector, deterministically.
///
/// Each shard's collector holds the records of flows its own hosts touched.
/// A same-shard flow contributes one complete record. A cross-shard flow
/// contributes two halves: the sender's registration (true `start`, `tag`,
/// `end: None` — the completion happened in the receiver's shard) and the
/// receiver's completion stub (`end: Some`, degenerate start). The merge
/// joins the halves by flow id — sender metadata, receiver end time — and
/// registers the results in flow-id order, so the merged statistics are
/// byte-identical for any shard count.
pub fn merge_shard_fct(per_shard: Vec<Vec<FlowRecord>>) -> FctCollector {
    use std::collections::hash_map::Entry;
    let mut by_flow: HashMap<u64, FlowRecord> = HashMap::new();
    for recs in per_shard {
        for r in recs {
            match by_flow.entry(r.flow.0) {
                Entry::Vacant(v) => {
                    v.insert(r);
                }
                Entry::Occupied(mut o) => {
                    let cur = o.get_mut();
                    if cur.end.is_none() {
                        // `cur` is the sender half: take the receiver's end.
                        cur.end = r.end;
                    } else if r.end.is_none() {
                        // `r` is the sender half: keep its metadata, graft
                        // the receiver's end time on.
                        let end = cur.end;
                        *cur = r;
                        cur.end = end;
                    }
                }
            }
        }
    }
    let mut all: Vec<FlowRecord> = by_flow.into_values().collect();
    all.sort_by_key(|r| r.flow.0);
    let mut merged = FctCollector::default();
    merged.reserve(all.len());
    for r in all {
        merged.register(r);
    }
    merged
}

/// Whole-run FCT recap exported into run manifests.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FctSummary {
    /// Flows registered.
    pub total: usize,
    /// Flows that completed.
    pub completed: usize,
    /// Flows still in flight at the end of the run.
    pub unfinished: usize,
    /// FCT statistics over all completed flows.
    pub overall: FctStats,
}

/// FCT summary in microseconds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FctStats {
    /// Number of flows summarised.
    pub count: usize,
    /// Mean FCT (us).
    pub avg_us: f64,
    /// Median FCT (us).
    pub p50_us: f64,
    /// 99th percentile FCT (us).
    pub p99_us: f64,
    /// 99.9th percentile FCT (us).
    pub p999_us: f64,
    /// Max FCT (us).
    pub max_us: f64,
    /// Samples discarded because they were NaN or infinite (a poisoned
    /// clock or a degenerate division upstream must taint the run visibly,
    /// not abort it). Absent in records written before this field existed.
    #[serde(default)]
    pub dropped_non_finite: usize,
}

impl FctStats {
    /// Build from raw FCT samples in microseconds.
    ///
    /// Non-finite samples (NaN, ±inf) are dropped from the summary and
    /// counted in [`FctStats::dropped_non_finite`] — one corrupt sample must
    /// not panic a whole run's summarization. The finite remainder is
    /// ordered with [`f64::total_cmp`], which is a total order and therefore
    /// cannot panic even if the finiteness filter is ever relaxed.
    pub fn from_us(fcts: Vec<f64>) -> FctStats {
        let total = fcts.len();
        let mut finite: Vec<f64> = fcts.into_iter().filter(|x| x.is_finite()).collect();
        let dropped = total - finite.len();
        if finite.is_empty() {
            return FctStats {
                dropped_non_finite: dropped,
                ..FctStats::default()
            };
        }
        finite.sort_by(f64::total_cmp);
        FctStats {
            count: finite.len(),
            avg_us: netsim::util::mean(&finite),
            p50_us: netsim::util::percentile_sorted(&finite, 50.0),
            p99_us: netsim::util::percentile_sorted(&finite, 99.0),
            p999_us: netsim::util::percentile_sorted(&finite, 99.9),
            max_us: *finite.last().unwrap(),
            dropped_non_finite: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, bytes: u64, start_us: u64, end_us: Option<u64>) -> FlowRecord {
        FlowRecord {
            flow: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            bytes,
            prio: 1,
            tag: 0,
            start: SimTime::from_us(start_us),
            end: end_us.map(SimTime::from_us),
        }
    }

    #[test]
    fn register_complete_roundtrip() {
        let mut c = FctCollector::default();
        c.register(rec(1, 1000, 0, None));
        assert_eq!(c.total_count(), 1);
        assert_eq!(c.completed_count(), 0);
        c.complete(FlowId(1), SimTime::from_us(42));
        assert_eq!(c.completed_count(), 1);
        let r = c.get(FlowId(1)).unwrap();
        assert_eq!(r.fct(), Some(SimTime::from_us(42)));
        assert_eq!(c.unfinished().count(), 0);
    }

    #[test]
    fn stats_by_size_slices() {
        let mut c = FctCollector::default();
        for i in 0..10u64 {
            let mut r = rec(
                i,
                if i < 5 { 1_000 } else { 10_000_000 },
                0,
                Some(10 * (i + 1)),
            );
            r.flow = FlowId(i);
            c.register(r);
        }
        assert_eq!(c.completed_count(), 10, "pre-completed records count");
        let mice = c.stats_by_size(0, 100_000);
        let elephants = c.stats_by_size(10_000_000, u64::MAX);
        assert_eq!(mice.count, 5);
        assert_eq!(elephants.count, 5);
        assert!((mice.avg_us - 30.0).abs() < 1e-9); // (10+20+30+40+50)/5
        assert!((elephants.avg_us - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FctStats::from_us(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_us, 0.0);
    }

    #[test]
    fn non_finite_fcts_are_dropped_not_fatal() {
        // A synthetic NaN/inf sample must not panic summarization (the old
        // partial_cmp(..).unwrap() sort aborted the whole run) and must not
        // pollute the finite statistics.
        let s = FctStats::from_us(vec![10.0, f64::NAN, 30.0, f64::INFINITY, 20.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.dropped_non_finite, 2);
        assert!((s.avg_us - 20.0).abs() < 1e-12);
        assert_eq!(s.max_us, 30.0);
        assert!(s.p999_us.is_finite());

        // All-poison input degrades to the empty summary, with the damage
        // counted.
        let s = FctStats::from_us(vec![f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(s.count, 0);
        assert_eq!(s.dropped_non_finite, 2);
        assert_eq!(s.avg_us, 0.0);
    }

    #[test]
    fn percentiles_ordering() {
        let s = FctStats::from_us((1..=1000).map(|x| x as f64).collect());
        assert!(s.p50_us <= s.p99_us && s.p99_us <= s.p999_us && s.p999_us <= s.max_us);
        assert_eq!(s.p99_us, 990.0);
        assert_eq!(s.max_us, 1000.0);
    }
}
