//! # transport — host transports for the `netsim` fabric
//!
//! Implements the three transport behaviours the ACC paper's environment
//! contains, as [`netsim::NicDriver`]s:
//!
//! * **DCQCN** ([`dcqcn`]) — the RoCEv2 congestion control that RDMA NICs run
//!   in hardware (Zhu et al., SIGCOMM'15): ECN-marked packets trigger CNPs
//!   from the notification point (receiver); the reaction point (sender)
//!   multiplicatively cuts its rate and recovers through fast-recovery /
//!   additive / hyper increase. Runs on the lossless PFC-protected class.
//! * **DCTCP** ([`window`]) — window-based, ECN-fraction-proportional backoff.
//! * **TCP Reno** ([`window`]) — ECN-unaware AIMD with drop-tail loss and
//!   go-back-N recovery; used for the RDMA/TCP coexistence experiments.
//!
//! A [`HostStack`] multiplexes any number of concurrent flows of any mix of
//! these transports over one NIC, measures flow completion times into a
//! shared [`FctCollector`], and lets closed-loop applications (the storage
//! and training models in the `workloads` crate) chain messages through the
//! [`AppHook`] trait.
//!
//! ```
//! use netsim::prelude::*;
//! use transport::{CcKind, FctCollector, Message, StackConfig};
//!
//! let topo = TopologySpec::single_switch(2, 25_000_000_000, SimTime::from_ns(500)).build();
//! let mut sim = Simulator::new(topo, SimConfig::default());
//! let fct = FctCollector::new_shared();
//! let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
//!
//! // One 1 MB RDMA message from host 0 to host 1, starting at t = 0.
//! transport::schedule_message(
//!     &mut sim, hosts[0], SimTime::ZERO,
//!     Message::new(hosts[1], 1_000_000, CcKind::Dcqcn),
//! );
//! sim.run_until(SimTime::from_ms(10));
//! assert_eq!(fct.borrow().completed().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod dcqcn;
pub mod msg;
pub mod stack;
pub mod stats;
pub mod window;

pub use app::{AppHook, CompletedMsg};
pub use dcqcn::DcqcnConfig;
pub use msg::{wire_bytes, CcKind, Message};
pub use stack::{HostStack, StackConfig};
pub use stats::{merge_shard_fct, FctCollector, FctStats, FctSummary, FlowRecord, SharedFct};
pub use window::WindowConfig;

use netsim::prelude::*;

/// Install a [`HostStack`] with `cfg` on every host of `sim`, all reporting
/// into `fct`. Returns the host ids in topology order.
pub fn install_stacks(sim: &mut Simulator, cfg: StackConfig, fct: &SharedFct) -> Vec<NodeId> {
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    for &h in &hosts {
        sim.set_driver(h, Box::new(HostStack::new(h, cfg.clone(), fct.clone())));
    }
    hosts
}

/// Reserve flow-map/queue capacity on `host`'s stack for `n_send` messages
/// it will originate and `n_recv` it will terminate (see
/// [`HostStack::reserve`]). Call before scheduling a pre-counted workload so
/// the measured run performs no flow-table growth.
pub fn reserve_stack(sim: &mut Simulator, host: NodeId, n_send: usize, n_recv: usize) {
    sim.with_driver(host, |d, _ctx| {
        d.as_any_mut()
            .downcast_mut::<HostStack>()
            .expect("driver is not a HostStack")
            .reserve(n_send, n_recv);
    });
}

/// Schedule `msg` to start from `host` at absolute time `at`.
pub fn schedule_message(sim: &mut Simulator, host: NodeId, at: SimTime, msg: Message) {
    sim.with_driver(host, |d, ctx| {
        d.as_any_mut()
            .downcast_mut::<HostStack>()
            .expect("driver is not a HostStack")
            .schedule_message(ctx, at, msg);
    });
}

/// Attach a shared application hook to every host stack (see [`AppHook`]).
pub fn set_app_hook(sim: &mut Simulator, hook: std::rc::Rc<std::cell::RefCell<dyn AppHook>>) {
    let hosts: Vec<NodeId> = sim.core().topo.hosts().to_vec();
    for &h in &hosts {
        sim.with_driver(h, |d, _ctx| {
            d.as_any_mut()
                .downcast_mut::<HostStack>()
                .expect("driver is not a HostStack")
                .set_app_hook(hook.clone());
        });
    }
}

// Send/Sync audit for the parallel run-matrix executor: matrix cells build
// their stacks in-thread, but the configs and result summaries they capture
// and return must cross worker threads.
#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn matrix_cell_inputs_and_results_cross_threads() {
        assert_send_sync::<StackConfig>();
        assert_send_sync::<DcqcnConfig>();
        assert_send_sync::<CcKind>();
        assert_send_sync::<Message>();
        assert_send_sync::<FlowRecord>();
        assert_send_sync::<FctStats>();
        assert_send_sync::<FctSummary>();
    }
}
