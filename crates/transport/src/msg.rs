//! Application-level messages handed to a [`crate::HostStack`].

use netsim::ids::{PRIO_RDMA, PRIO_TCP};
use netsim::packet::HEADER_BYTES;
use netsim::prelude::*;
use serde::{Deserialize, Serialize};

/// Which congestion control a message's flow uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CcKind {
    /// RoCEv2/DCQCN on the lossless RDMA class.
    Dcqcn,
    /// DCTCP on the best-effort class (ECT-marked).
    Dctcp,
    /// ECN-unaware TCP Reno on the best-effort class (drop-tail).
    Reno,
}

impl CcKind {
    /// The traffic class this transport's data travels on.
    pub fn prio(self) -> Prio {
        match self {
            CcKind::Dcqcn => PRIO_RDMA,
            CcKind::Dctcp | CcKind::Reno => PRIO_TCP,
        }
    }

    /// Whether data packets carry ECT (are markable by RED).
    pub fn ect(self) -> bool {
        !matches!(self, CcKind::Reno)
    }
}

/// A message (one flow) to transfer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Message {
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to deliver.
    pub bytes: u64,
    /// Transport to use.
    pub cc: CcKind,
    /// Opaque tag made visible to [`crate::AppHook`] on completion.
    pub tag: u64,
}

/// Total wire bytes a `bytes`-byte message occupies on the data path:
/// full-MTU segments of `mtu_payload + HEADER_BYTES` plus one short final
/// segment for the remainder. This is exactly the segmentation
/// [`crate::HostStack`] performs (greedy full-MTU packets, sequence-number
/// driven), and the flow-level backend prices source drains with it so its
/// ideal-FCT fast path lands on the same picosecond the packet engine does.
pub fn wire_bytes(bytes: u64, mtu_payload: u32) -> u64 {
    let mtu = mtu_payload as u64;
    let hdr = HEADER_BYTES as u64;
    let full = bytes / mtu;
    let rem = bytes % mtu;
    full * (mtu + hdr) + if rem > 0 { rem + hdr } else { 0 }
}

impl Message {
    /// A message with tag 0.
    pub fn new(dst: NodeId, bytes: u64, cc: CcKind) -> Message {
        Message {
            dst,
            bytes,
            cc,
            tag: 0,
        }
    }

    /// Set the application tag.
    pub fn with_tag(mut self, tag: u64) -> Message {
        self.tag = tag;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prio_mapping() {
        assert_eq!(CcKind::Dcqcn.prio(), PRIO_RDMA);
        assert_eq!(CcKind::Dctcp.prio(), PRIO_TCP);
        assert_eq!(CcKind::Reno.prio(), PRIO_TCP);
    }

    #[test]
    fn wire_bytes_matches_stack_segmentation() {
        // Greedy full-MTU segmentation at mtu_payload = 1000.
        assert_eq!(wire_bytes(0, 1000), 0);
        assert_eq!(wire_bytes(1, 1000), 49);
        assert_eq!(wire_bytes(999, 1000), 999 + 48);
        assert_eq!(wire_bytes(1000, 1000), 1048);
        assert_eq!(wire_bytes(1001, 1000), 1048 + 49);
        assert_eq!(wire_bytes(64 * 1024, 1000), 65 * 1048 + 536 + 48);
    }

    #[test]
    fn ect_mapping() {
        assert!(CcKind::Dcqcn.ect());
        assert!(CcKind::Dctcp.ect());
        assert!(!CcKind::Reno.ect());
    }

    #[test]
    fn builder() {
        let m = Message::new(NodeId(5), 123, CcKind::Dcqcn).with_tag(9);
        assert_eq!(m.dst, NodeId(5));
        assert_eq!(m.tag, 9);
    }
}
