//! Application-level messages handed to a [`crate::HostStack`].

use netsim::ids::{PRIO_RDMA, PRIO_TCP};
use netsim::prelude::*;
use serde::{Deserialize, Serialize};

/// Which congestion control a message's flow uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CcKind {
    /// RoCEv2/DCQCN on the lossless RDMA class.
    Dcqcn,
    /// DCTCP on the best-effort class (ECT-marked).
    Dctcp,
    /// ECN-unaware TCP Reno on the best-effort class (drop-tail).
    Reno,
}

impl CcKind {
    /// The traffic class this transport's data travels on.
    pub fn prio(self) -> Prio {
        match self {
            CcKind::Dcqcn => PRIO_RDMA,
            CcKind::Dctcp | CcKind::Reno => PRIO_TCP,
        }
    }

    /// Whether data packets carry ECT (are markable by RED).
    pub fn ect(self) -> bool {
        !matches!(self, CcKind::Reno)
    }
}

/// A message (one flow) to transfer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Message {
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to deliver.
    pub bytes: u64,
    /// Transport to use.
    pub cc: CcKind,
    /// Opaque tag made visible to [`crate::AppHook`] on completion.
    pub tag: u64,
}

impl Message {
    /// A message with tag 0.
    pub fn new(dst: NodeId, bytes: u64, cc: CcKind) -> Message {
        Message {
            dst,
            bytes,
            cc,
            tag: 0,
        }
    }

    /// Set the application tag.
    pub fn with_tag(mut self, tag: u64) -> Message {
        self.tag = tag;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prio_mapping() {
        assert_eq!(CcKind::Dcqcn.prio(), PRIO_RDMA);
        assert_eq!(CcKind::Dctcp.prio(), PRIO_TCP);
        assert_eq!(CcKind::Reno.prio(), PRIO_TCP);
    }

    #[test]
    fn ect_mapping() {
        assert!(CcKind::Dcqcn.ect());
        assert!(CcKind::Dctcp.ect());
        assert!(!CcKind::Reno.ect());
    }

    #[test]
    fn builder() {
        let m = Message::new(NodeId(5), 123, CcKind::Dcqcn).with_tag(9);
        assert_eq!(m.dst, NodeId(5));
        assert_eq!(m.tag, 9);
    }
}
