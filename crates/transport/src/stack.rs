//! The per-host protocol stack: multiplexes DCQCN / DCTCP / Reno flows over
//! one NIC, implements the receiver sides (CNP generation, cumulative ACKs),
//! measures FCTs and drives closed-loop applications.

use crate::app::{AppHook, CompletedMsg};
use crate::dcqcn::{DcqcnConfig, DcqcnState};
use crate::msg::{CcKind, Message};
use crate::stats::{FlowRecord, SharedFct};
use crate::window::{AckAction, WindowConfig, WindowFlavor, WindowState};
use netsim::ids::{PRIO_CTRL, PRIO_RDMA};
use netsim::packet::HEADER_BYTES;
use netsim::prelude::*;
use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

/// Timer-token kinds (low 3 bits of the token).
const TK_PACE: u64 = 0;
const TK_ALPHA: u64 = 1;
const TK_RATE: u64 = 2;
const TK_RTO: u64 = 3;
const TK_MSGSTART: u64 = 5;

#[inline]
fn tok(seq: u64, kind: u64) -> u64 {
    (seq << 3) | kind
}

/// Configuration shared by every flow on a stack.
#[derive(Clone, Debug, Default)]
pub struct StackConfig {
    /// DCQCN parameters.
    pub dcqcn: DcqcnConfig,
    /// Reno/DCTCP parameters.
    pub window: WindowConfig,
    /// NIC egress backlog (per class) above which senders defer, bytes.
    /// 0 means "use 8 wire-MTUs".
    pub backlog_limit_bytes: u64,
}

impl StackConfig {
    fn backlog_limit(&self, mtu_payload: u32) -> u64 {
        if self.backlog_limit_bytes > 0 {
            self.backlog_limit_bytes
        } else {
            8 * (mtu_payload + HEADER_BYTES) as u64
        }
    }
}

/// Congestion-control state of one sending flow.
enum CcState {
    Dcqcn(DcqcnState),
    Window(WindowState),
}

struct SendFlow {
    flow: FlowId,
    dst: NodeId,
    bytes: u64,
    prio: Prio,
    ect: bool,
    snd_nxt: u64,
    snd_una: u64,
    /// Waiting in the stack's ready ring for NIC room.
    in_ready: bool,
    cc: CcState,
}

#[derive(Debug, Default)]
struct RecvFlow {
    expected: u64,
    last_cnp: Option<SimTime>,
    done: bool,
}

struct PendingMsg {
    at: SimTime,
    ord: u64,
    msg: Message,
}

impl PartialEq for PendingMsg {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.ord == o.ord
    }
}
impl Eq for PendingMsg {}
impl PartialOrd for PendingMsg {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for PendingMsg {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.at.cmp(&o.at).then(self.ord.cmp(&o.ord))
    }
}

/// The [`NicDriver`] implementing all host-side protocol behaviour.
pub struct HostStack {
    host: NodeId,
    cfg: StackConfig,
    fct: SharedFct,
    app: Option<Rc<RefCell<dyn AppHook>>>,
    flows: HashMap<u64, SendFlow>,
    recv: HashMap<u64, RecvFlow>,
    pending: BinaryHeap<Reverse<PendingMsg>>,
    /// Flows whose pacer/window allows sending but that found the NIC
    /// backlog full; drained round-robin on TX completions (the way real
    /// NICs arbitrate their active send queues).
    ready: std::collections::VecDeque<u64>,
    next_seq: u64,
    next_ord: u64,
    /// RDMA packets that arrived out of sequence (must stay 0 when PFC works).
    pub rdma_sequence_errors: u64,
    /// CNPs received (sender side).
    pub cnp_rx: u64,
    /// CNPs generated (receiver side).
    pub cnp_tx: u64,
}

impl HostStack {
    /// Build a stack for `host` reporting FCTs into `fct`.
    pub fn new(host: NodeId, cfg: StackConfig, fct: SharedFct) -> Self {
        HostStack {
            host,
            cfg,
            fct,
            app: None,
            flows: HashMap::new(),
            recv: HashMap::new(),
            pending: BinaryHeap::new(),
            ready: std::collections::VecDeque::new(),
            next_seq: 1,
            next_ord: 0,
            rdma_sequence_errors: 0,
            cnp_rx: 0,
            cnp_tx: 0,
        }
    }

    /// Attach the closed-loop application hook.
    pub fn set_app_hook(&mut self, hook: Rc<RefCell<dyn AppHook>>) {
        self.app = Some(hook);
    }

    /// Reserve capacity for `n_send` locally originated messages and
    /// `n_recv` messages terminating here. Workload installers call this
    /// with per-host totals so the steady-state run never rehashes a flow
    /// map or grows the pending/ready queues.
    pub fn reserve(&mut self, n_send: usize, n_recv: usize) {
        self.flows.reserve(n_send);
        self.pending.reserve(n_send);
        self.ready.reserve(n_send);
        self.recv.reserve(n_recv);
    }

    /// Number of flows this stack is currently sending.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The FCT collector this stack records into (sharded harnesses reach
    /// through any owned host's stack to extract the shard's records).
    pub fn fct(&self) -> SharedFct {
        self.fct.clone()
    }

    /// Current DCQCN rates (bits/s) of this stack's active RDMA flows —
    /// diagnostic/telemetry use.
    pub fn dcqcn_rates(&self) -> Vec<f64> {
        self.flows
            .values()
            .filter_map(|f| match &f.cc {
                CcState::Dcqcn(st) => Some(st.rate_c),
                _ => None,
            })
            .collect()
    }

    /// Queue `msg` to start at absolute time `at`.
    pub fn schedule_message(&mut self, ctx: &mut HostCtx<'_>, at: SimTime, msg: Message) {
        let at = at.max(ctx.now());
        let ord = self.next_ord;
        self.next_ord += 1;
        self.pending.push(Reverse(PendingMsg { at, ord, msg }));
        ctx.set_timer_at(at, TK_MSGSTART);
    }

    /// Start `msg` right now.
    pub fn start_message(&mut self, ctx: &mut HostCtx<'_>, msg: Message) {
        assert!(msg.bytes > 0, "empty message");
        assert!(msg.dst != self.host, "message to self");
        let seq = self.next_seq;
        self.next_seq += 1;
        let flow = FlowId(((self.host.0 as u64) << 32) | seq);
        let now = ctx.now();
        self.fct.borrow_mut().register(FlowRecord {
            flow,
            src: self.host,
            dst: msg.dst,
            bytes: msg.bytes,
            prio: msg.cc.prio(),
            tag: msg.tag,
            start: now,
            end: None,
        });
        let line = ctx.line_rate_bps() as f64;
        let cc = match msg.cc {
            CcKind::Dcqcn => CcState::Dcqcn(DcqcnState::new(line, now)),
            CcKind::Dctcp => CcState::Window(WindowState::new(
                WindowFlavor::Dctcp,
                &self.cfg.window,
                ctx.mtu_payload(),
                now,
            )),
            CcKind::Reno => CcState::Window(WindowState::new(
                WindowFlavor::Reno,
                &self.cfg.window,
                ctx.mtu_payload(),
                now,
            )),
        };
        self.flows.insert(
            seq,
            SendFlow {
                flow,
                dst: msg.dst,
                bytes: msg.bytes,
                prio: msg.cc.prio(),
                ect: msg.cc.ect(),
                snd_nxt: 0,
                snd_una: 0,
                in_ready: false,
                cc,
            },
        );
        match msg.cc {
            CcKind::Dcqcn => {
                self.dcqcn_pace(seq, ctx);
                ctx.set_timer_after(self.cfg.dcqcn.alpha_timer, tok(seq, TK_ALPHA));
                ctx.set_timer_after(self.cfg.dcqcn.rate_inc_timer, tok(seq, TK_RATE));
            }
            CcKind::Dctcp | CcKind::Reno => {
                // First DCTCP observation window ends at the initial cwnd.
                if let Some(SendFlow {
                    cc: CcState::Window(st),
                    ..
                }) = self.flows.get_mut(&seq)
                {
                    st.window_end = (st.cwnd as u64).min(msg.bytes);
                }
                self.window_send(seq, ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Sending machinery
    // ------------------------------------------------------------------

    fn dcqcn_pace(&mut self, seq: u64, ctx: &mut HostCtx<'_>) {
        let mtu = ctx.mtu_payload();
        let line = ctx.line_rate_bps() as f64;
        let backlog_limit = self.cfg.backlog_limit(mtu);
        let Some(f) = self.flows.get_mut(&seq) else {
            return;
        };
        let CcState::Dcqcn(_) = &f.cc else {
            return;
        };
        if f.snd_nxt >= f.bytes {
            return; // fully sent; waiting for the fin ACK
        }
        if ctx.egress_backlog_bytes(f.prio) >= backlog_limit {
            // NIC backlogged (aggregate of flows exceeds line rate or PFC
            // pause): park the flow in the ready ring; `on_tx_ready` resumes
            // it round-robin when the NIC drains, which is how real NICs
            // arbitrate active send queues (per-packet round-robin over
            // QPs). A timer here would phase-lock with the serialization
            // period and starve flows.
            if !f.in_ready {
                f.in_ready = true;
                self.ready.push_back(seq);
            }
            return;
        }
        let payload = mtu.min((f.bytes - f.snd_nxt) as u32);
        let last = f.snd_nxt + payload as u64 == f.bytes;
        let pkt = Packet::data(
            f.flow,
            self.host,
            f.dst,
            f.prio,
            f.snd_nxt,
            payload,
            last,
            Ecn::Ect,
        );
        f.snd_nxt += payload as u64;
        let wire = (payload + HEADER_BYTES) as u64;
        let CcState::Dcqcn(st) = &mut f.cc else {
            unreachable!("checked above");
        };
        st.on_bytes_sent(&self.cfg.dcqcn, wire, line);
        if f.snd_nxt < f.bytes {
            let delay = st.pace_delay(wire);
            ctx.set_timer_after(delay, tok(seq, TK_PACE));
        }
        ctx.send(pkt);
    }

    fn window_send(&mut self, seq: u64, ctx: &mut HostCtx<'_>) {
        let mtu = ctx.mtu_payload();
        let backlog_limit = self.cfg.backlog_limit(mtu);
        let rto = self.cfg.window.rto;
        loop {
            let Some(f) = self.flows.get_mut(&seq) else {
                return;
            };
            let CcState::Window(st) = &mut f.cc else {
                return;
            };
            if f.snd_nxt >= f.bytes {
                return; // all data (re)sent; wait for ACKs
            }
            if st.usable(f.snd_una, f.snd_nxt) == 0 {
                return; // window full; ACKs will reopen it
            }
            if ctx.egress_backlog_bytes(f.prio) >= backlog_limit {
                if !f.in_ready {
                    f.in_ready = true;
                    self.ready.push_back(seq);
                }
                return;
            }
            let payload = mtu.min((f.bytes - f.snd_nxt) as u32);
            let last = f.snd_nxt + payload as u64 == f.bytes;
            let ecn = if f.ect { Ecn::Ect } else { Ecn::NotEct };
            let pkt = Packet::data(
                f.flow, self.host, f.dst, f.prio, f.snd_nxt, payload, last, ecn,
            );
            f.snd_nxt += payload as u64;
            if !st.rto_pending {
                st.rto_pending = true;
                ctx.set_timer_after(rto, tok(seq, TK_RTO));
            }
            ctx.send(pkt);
        }
    }

    // ------------------------------------------------------------------
    // Timer dispatch
    // ------------------------------------------------------------------

    fn on_msgstart(&mut self, ctx: &mut HostCtx<'_>) {
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.at > ctx.now() {
                break;
            }
            let Reverse(p) = self.pending.pop().unwrap();
            self.start_message(ctx, p.msg);
        }
    }

    fn on_alpha_timer(&mut self, seq: u64, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let interval = self.cfg.dcqcn.alpha_timer;
        if let Some(SendFlow {
            cc: CcState::Dcqcn(st),
            ..
        }) = self.flows.get_mut(&seq)
        {
            st.on_alpha_timer(&self.cfg.dcqcn, now);
            ctx.set_timer_after(interval, tok(seq, TK_ALPHA));
        }
    }

    fn on_rate_timer(&mut self, seq: u64, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let line = ctx.line_rate_bps() as f64;
        let interval = self.cfg.dcqcn.rate_inc_timer;
        if let Some(SendFlow {
            cc: CcState::Dcqcn(st),
            ..
        }) = self.flows.get_mut(&seq)
        {
            st.on_rate_timer(&self.cfg.dcqcn, now, line);
            ctx.set_timer_after(interval, tok(seq, TK_RATE));
        }
    }

    fn on_rto(&mut self, seq: u64, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let rto = self.cfg.window.rto;
        let mut resend = false;
        {
            let Some(f) = self.flows.get_mut(&seq) else {
                return;
            };
            let CcState::Window(st) = &mut f.cc else {
                return;
            };
            st.rto_pending = false;
            let quiet = now.saturating_sub(st.last_progress);
            if quiet >= rto && f.snd_nxt > f.snd_una {
                st.on_rto();
                st.last_progress = now;
                f.snd_nxt = f.snd_una;
                resend = true;
                st.rto_pending = true;
                ctx.set_timer_after(rto, tok(seq, TK_RTO));
            } else if f.snd_nxt > f.snd_una {
                st.rto_pending = true;
                ctx.set_timer_at(st.last_progress + rto, tok(seq, TK_RTO));
            }
        }
        if resend {
            self.window_send(seq, ctx);
        }
    }

    /// Drain the ready ring into whatever NIC room is available, round
    /// robin across flows (re-parking flows that are still blocked).
    fn drain_ready(&mut self, ctx: &mut HostCtx<'_>) {
        let n = self.ready.len();
        for _ in 0..n {
            let Some(seq) = self.ready.pop_front() else {
                break;
            };
            let Some(f) = self.flows.get_mut(&seq) else {
                continue; // flow finished while parked
            };
            f.in_ready = false;
            match f.cc {
                CcState::Dcqcn(_) => self.dcqcn_pace(seq, ctx),
                CcState::Window(_) => self.window_send(seq, ctx),
            }
        }
    }

    // ------------------------------------------------------------------
    // Receive paths
    // ------------------------------------------------------------------

    fn on_data(
        &mut self,
        pkt: &Packet,
        offset: u64,
        payload: u32,
        last: bool,
        ctx: &mut HostCtx<'_>,
    ) {
        let now = ctx.now();
        let raw = pkt.flow.0;
        let cnp_interval = self.cfg.dcqcn.cnp_interval;
        let mut completed: Option<u64> = None; // total bytes, when finishing
        {
            let r = self.recv.entry(raw).or_default();
            if r.done {
                // Stray retransmission after completion: re-ACK so the
                // sender can clean up (TCP classes only; RDMA is lossless).
                if pkt.prio != PRIO_RDMA {
                    let ack = Packet::ack(
                        pkt.flow, self.host, pkt.src, pkt.prio, r.expected, false, true,
                    );
                    ctx.send(ack);
                }
                return;
            }
            if pkt.prio == PRIO_RDMA {
                // DCQCN notification point: at most one CNP per interval.
                if pkt.ecn == Ecn::Ce && r.last_cnp.is_none_or(|t| now - t >= cnp_interval) {
                    r.last_cnp = Some(now);
                    self.cnp_tx += 1;
                    let cnp = Packet::cnp(pkt.flow, self.host, pkt.src, PRIO_CTRL);
                    ctx.send(cnp);
                }
                if offset != r.expected {
                    self.rdma_sequence_errors += 1;
                    return;
                }
                r.expected += payload as u64;
                if last {
                    r.done = true;
                    completed = Some(r.expected);
                    let fin = Packet::ack(
                        pkt.flow, self.host, pkt.src, PRIO_CTRL, r.expected, false, true,
                    );
                    ctx.send(fin);
                }
            } else {
                let mut fin = false;
                if offset == r.expected {
                    r.expected += payload as u64;
                    if last {
                        fin = true;
                        r.done = true;
                        completed = Some(r.expected);
                    }
                }
                // Cumulative ACK (also serves as a duplicate ACK on gaps).
                let ack = Packet::ack(
                    pkt.flow,
                    self.host,
                    pkt.src,
                    pkt.prio,
                    r.expected,
                    pkt.ecn == Ecn::Ce,
                    fin,
                );
                ctx.send(ack);
            }
        }
        if let Some(total) = completed {
            self.finish_receive(pkt, total, ctx);
        }
    }

    /// Record completion and run the app hook.
    fn finish_receive(&mut self, pkt: &Packet, total_bytes: u64, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let (tag, start) = {
            let mut fct = self.fct.borrow_mut();
            if fct.get(pkt.flow).is_some() {
                fct.complete(pkt.flow, now);
                let rec = fct.get(pkt.flow).expect("completed unknown flow");
                (rec.tag, rec.start)
            } else {
                // Sharded run, cross-shard flow: the sender registered in
                // its own shard's collector. Record the receiver half here
                // (start/tag unknown on this side); the harness joins the
                // two halves by flow id ([`crate::stats::merge_shard_fct`]).
                // App hooks see a degenerate start==end for such flows, so
                // closed-loop apps are unsupported in sharded runs.
                debug_assert!(
                    !ctx.owns_node(pkt.src),
                    "flow {} completed but never registered",
                    pkt.flow
                );
                fct.register(FlowRecord {
                    flow: pkt.flow,
                    src: pkt.src,
                    dst: self.host,
                    bytes: total_bytes,
                    prio: pkt.prio,
                    tag: 0,
                    start: now,
                    end: Some(now),
                });
                (0, now)
            }
        };
        if let Some(app) = self.app.clone() {
            let done = CompletedMsg {
                flow: pkt.flow,
                src: pkt.src,
                dst: self.host,
                bytes: total_bytes,
                tag,
                start,
                end: now,
            };
            let follow_ups = app.borrow_mut().on_message_received(&done);
            for (delay, m) in follow_ups {
                if delay == SimTime::ZERO {
                    self.start_message(ctx, m);
                } else {
                    self.schedule_message(ctx, now + delay, m);
                }
            }
        }
    }

    fn on_ack(
        &mut self,
        pkt: &Packet,
        cum_ack: u64,
        ce_echo: bool,
        fin: bool,
        ctx: &mut HostCtx<'_>,
    ) {
        let seq = pkt.flow.0 & 0xffff_ffff;
        let now = ctx.now();
        let wcfg = self.cfg.window.clone();
        let mut retransmit = false;
        let mut remove = false;
        {
            let Some(f) = self.flows.get_mut(&seq) else {
                return; // flow already finished
            };
            match &mut f.cc {
                CcState::Dcqcn(_) => {
                    if fin {
                        remove = true;
                    }
                }
                CcState::Window(st) => {
                    let action = st.on_ack(&wcfg, cum_ack, ce_echo, f.snd_una, f.snd_nxt, now);
                    if cum_ack > f.snd_una {
                        f.snd_una = cum_ack;
                    }
                    if fin || f.snd_una >= f.bytes {
                        remove = true;
                    } else if action == AckAction::Retransmit {
                        f.snd_nxt = f.snd_una;
                        retransmit = true;
                    }
                }
            }
        }
        if remove {
            self.flows.remove(&seq);
            return;
        }
        if retransmit {
            self.window_send(seq, ctx);
        } else {
            // Window may have opened.
            if matches!(
                self.flows.get(&seq).map(|f| &f.cc),
                Some(CcState::Window(_))
            ) {
                self.window_send(seq, ctx);
            }
        }
    }

    fn on_cnp(&mut self, pkt: &Packet, ctx: &mut HostCtx<'_>) {
        let seq = pkt.flow.0 & 0xffff_ffff;
        self.cnp_rx += 1;
        let now = ctx.now();
        if let Some(SendFlow {
            cc: CcState::Dcqcn(st),
            ..
        }) = self.flows.get_mut(&seq)
        {
            st.on_cnp(&self.cfg.dcqcn, now);
            let _ = ctx; // pacing timer picks up the new rate on next fire
        }
    }
}

impl NicDriver for HostStack {
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut HostCtx<'_>) {
        match pkt.kind {
            PacketKind::Data {
                offset,
                payload,
                last,
            } => self.on_data(pkt, offset, payload, last, ctx),
            PacketKind::Ack {
                cum_ack,
                ce_echo,
                fin,
            } => self.on_ack(pkt, cum_ack, ce_echo, fin, ctx),
            PacketKind::Cnp => self.on_cnp(pkt, ctx),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        let seq = token >> 3;
        match token & 0b111 {
            TK_PACE => self.dcqcn_pace(seq, ctx),
            TK_ALPHA => self.on_alpha_timer(seq, ctx),
            TK_RATE => self.on_rate_timer(seq, ctx),
            TK_RTO => self.on_rto(seq, ctx),
            TK_MSGSTART => self.on_msgstart(ctx),
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_tx_ready(&mut self, ctx: &mut HostCtx<'_>) {
        if !self.ready.is_empty() {
            self.drain_ready(ctx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::FctCollector;

    fn sim_with_stacks(
        n_hosts: usize,
        host_bps: u64,
        cfg: SimConfig,
    ) -> (Simulator, Vec<NodeId>, SharedFct) {
        let topo = TopologySpec::single_switch(n_hosts, host_bps, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, cfg);
        let fct = FctCollector::new_shared();
        let hosts = crate::install_stacks(&mut sim, StackConfig::default(), &fct);
        (sim, hosts, fct)
    }

    #[test]
    fn dcqcn_single_flow_near_line_rate() {
        let (mut sim, hosts, fct) = sim_with_stacks(2, 25_000_000_000, SimConfig::default());
        let bytes = 10_000_000u64; // 10 MB
        crate::schedule_message(
            &mut sim,
            hosts[0],
            SimTime::ZERO,
            Message::new(hosts[1], bytes, CcKind::Dcqcn),
        );
        sim.run_until(SimTime::from_ms(20));
        let fct = fct.borrow();
        assert_eq!(fct.completed_count(), 1);
        let rec = fct.completed().next().unwrap();
        let fct_s = rec.fct().unwrap().as_secs_f64();
        // Goodput: payload only; wire adds ~4.8% headers. Expect >= 90% of line.
        let goodput = bytes as f64 * 8.0 / fct_s;
        assert!(
            goodput > 0.90 * 25e9,
            "goodput {:.2} Gbps too low",
            goodput / 1e9
        );
        assert_eq!(sim.core().total_drops, 0);
    }

    #[test]
    fn dcqcn_incast_completes_losslessly_with_small_queue() {
        // 4:1 incast, small ECN threshold keeps the queue short.
        let mut cfg = SimConfig::default();
        cfg.port.ecn[PRIO_RDMA as usize] = Some(EcnConfig::new(50 * 1024, 200 * 1024, 0.05));
        let (mut sim, hosts, fct) = sim_with_stacks(5, 25_000_000_000, cfg);
        for s in 0..4 {
            crate::schedule_message(
                &mut sim,
                hosts[s],
                SimTime::ZERO,
                Message::new(hosts[4], 2_000_000, CcKind::Dcqcn),
            );
        }
        sim.run_until(SimTime::from_ms(50));
        assert_eq!(fct.borrow().completed_count(), 4);
        assert_eq!(sim.core().total_drops, 0);
        // All four finished within 2.5x of each other (rough fairness).
        let fcts: Vec<f64> = fct
            .borrow()
            .completed()
            .map(|r| r.fct().unwrap().as_secs_f64())
            .collect();
        let min = fcts.iter().cloned().fold(f64::MAX, f64::min);
        let max = fcts.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.5, "unfair: min={min} max={max}");
    }

    #[test]
    fn dcqcn_cnps_reduce_rate_under_congestion() {
        let mut cfg = SimConfig::default();
        cfg.port.ecn[PRIO_RDMA as usize] = Some(EcnConfig::new(20 * 1024, 80 * 1024, 0.1));
        let (mut sim, hosts, _fct) = sim_with_stacks(3, 25_000_000_000, cfg);
        for s in 0..2 {
            crate::schedule_message(
                &mut sim,
                hosts[s],
                SimTime::ZERO,
                Message::new(hosts[2], 20_000_000, CcKind::Dcqcn),
            );
        }
        sim.run_until(SimTime::from_ms(2));
        // Mid-transfer, inspect the sender's DCQCN rate: must be well below
        // line rate because of CNPs.
        sim.with_driver(hosts[0], |d, _| {
            let stack = d.as_any_mut().downcast_mut::<HostStack>().unwrap();
            let f = stack.flows.values().next().expect("flow active");
            if let CcState::Dcqcn(st) = &f.cc {
                assert!(
                    st.rate_c < 20e9,
                    "rate should have been cut, rate_c={:.2}G",
                    st.rate_c / 1e9
                );
                assert!(st.alpha > 0.0);
            } else {
                panic!("expected dcqcn flow");
            }
        });
    }

    #[test]
    fn reno_flow_completes_over_droptail() {
        let mut cfg = SimConfig::default();
        cfg.port.max_queue_bytes[0] = 64 * 1024; // shallow TCP queue
        let (mut sim, hosts, fct) = sim_with_stacks(3, 10_000_000_000, cfg);
        for s in 0..2 {
            crate::schedule_message(
                &mut sim,
                hosts[s],
                SimTime::ZERO,
                Message::new(hosts[2], 5_000_000, CcKind::Reno),
            );
        }
        sim.run_until(SimTime::from_ms(200));
        assert_eq!(
            fct.borrow().completed_count(),
            2,
            "both flows finish despite drops (drops={})",
            sim.core().total_drops
        );
    }

    #[test]
    fn dctcp_keeps_queue_shorter_than_reno() {
        // Two senders, one receiver; compare time-average queue depth of the
        // TCP class under DCTCP (marking at 30KB) vs Reno (drop-tail only).
        fn run(cc: CcKind) -> f64 {
            let mut cfg = SimConfig::default();
            cfg.port.ecn[0] = Some(EcnConfig::new(30 * 1024, 30 * 1024, 1.0));
            cfg.port.max_queue_bytes[0] = 1024 * 1024;
            let (mut sim, hosts, _fct) = sim_with_stacks(3, 10_000_000_000, cfg);
            for s in 0..2 {
                crate::schedule_message(
                    &mut sim,
                    hosts[s],
                    SimTime::ZERO,
                    Message::new(hosts[2], 20_000_000, cc),
                );
            }
            let horizon = SimTime::from_ms(20);
            sim.run_until(horizon);
            let sw = sim.core().topo.switches()[0];
            let t = sim.core_mut().synced_queue_telem(sw, PortId(2), 0);
            t.qlen_integral_byte_ps as f64 / horizon.as_ps() as f64
        }
        let dctcp_q = run(CcKind::Dctcp);
        let reno_q = run(CcKind::Reno);
        assert!(
            dctcp_q < reno_q / 2.0,
            "DCTCP avg queue {dctcp_q:.0}B should be far below Reno {reno_q:.0}B"
        );
    }

    #[test]
    fn scheduled_messages_start_on_time() {
        let (mut sim, hosts, fct) = sim_with_stacks(2, 25_000_000_000, SimConfig::default());
        crate::schedule_message(
            &mut sim,
            hosts[0],
            SimTime::from_ms(3),
            Message::new(hosts[1], 1000, CcKind::Dcqcn),
        );
        sim.run_until(SimTime::from_ms(2));
        assert_eq!(fct.borrow().total_count(), 0, "not started yet");
        sim.run_until(SimTime::from_ms(10));
        let b = fct.borrow();
        assert_eq!(b.completed_count(), 1);
        assert_eq!(b.completed().next().unwrap().start, SimTime::from_ms(3));
    }

    #[test]
    fn many_small_messages_all_complete() {
        let (mut sim, hosts, fct) = sim_with_stacks(4, 25_000_000_000, SimConfig::default());
        let mut n = 0;
        for s in 0..3 {
            for k in 0..50 {
                crate::schedule_message(
                    &mut sim,
                    hosts[s],
                    SimTime::from_us(k * 20),
                    Message::new(hosts[3], 1_000 + k * 137, CcKind::Dcqcn),
                );
                n += 1;
            }
        }
        sim.run_until(SimTime::from_ms(100));
        assert_eq!(fct.borrow().completed_count(), n);
        assert_eq!(fct.borrow().unfinished().count(), 0);
    }

    #[test]
    fn app_hook_chains_messages() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// Ping-pong: every received message under 5 hops triggers a reply.
        struct PingPong {
            hops: u64,
        }
        impl AppHook for PingPong {
            fn on_message_received(&mut self, m: &CompletedMsg) -> Vec<(SimTime, Message)> {
                if m.tag < self.hops {
                    vec![(
                        SimTime::from_us(m.tag), // growing think-time per hop
                        Message::new(m.src, m.bytes, CcKind::Dcqcn).with_tag(m.tag + 1),
                    )]
                } else {
                    vec![]
                }
            }
        }
        let (mut sim, hosts, fct) = sim_with_stacks(2, 25_000_000_000, SimConfig::default());
        crate::set_app_hook(&mut sim, Rc::new(RefCell::new(PingPong { hops: 5 })));
        crate::schedule_message(
            &mut sim,
            hosts[0],
            SimTime::ZERO,
            Message::new(hosts[1], 10_000, CcKind::Dcqcn).with_tag(0),
        );
        sim.run_until(SimTime::from_ms(10));
        // tags 0..=5 -> 6 messages total.
        assert_eq!(fct.borrow().completed_count(), 6);
    }

    #[test]
    fn duplicate_final_segment_is_reacked_for_tcp() {
        // After a TCP flow completes, a stray retransmission of the last
        // segment must be re-ACKed with fin so the sender can clean up.
        let (mut sim, hosts, fct) = sim_with_stacks(2, 25_000_000_000, SimConfig::default());
        crate::schedule_message(
            &mut sim,
            hosts[0],
            SimTime::ZERO,
            Message::new(hosts[1], 50_000, CcKind::Reno),
        );
        sim.run_until(SimTime::from_ms(20));
        assert_eq!(fct.borrow().completed_count(), 1);
        // Sender state must be gone (fin processed).
        sim.with_driver(hosts[0], |d, _| {
            let st = d.as_any_mut().downcast_mut::<HostStack>().unwrap();
            assert_eq!(st.active_flows(), 0);
        });
    }

    #[test]
    fn cnp_counters_track_marking() {
        let mut cfg = SimConfig::default();
        cfg.port.ecn[PRIO_RDMA as usize] = Some(EcnConfig::new(5_000, 5_000, 1.0));
        let (mut sim, hosts, _fct) = sim_with_stacks(3, 25_000_000_000, cfg);
        for s in 0..2 {
            crate::schedule_message(
                &mut sim,
                hosts[s],
                SimTime::ZERO,
                Message::new(hosts[2], 5_000_000, CcKind::Dcqcn),
            );
        }
        sim.run_until(SimTime::from_ms(10));
        let rx_cnps = sim.with_driver(hosts[2], |d, _| {
            d.as_any_mut().downcast_mut::<HostStack>().unwrap().cnp_tx
        });
        let tx_cnps: u64 = (0..2)
            .map(|s| {
                sim.with_driver(hosts[s], |d, _| {
                    d.as_any_mut().downcast_mut::<HostStack>().unwrap().cnp_rx
                })
            })
            .sum();
        assert!(rx_cnps > 0, "marked packets must generate CNPs");
        assert_eq!(rx_cnps, tx_cnps, "every CNP must arrive (ctrl class)");
    }

    #[test]
    fn message_to_self_rejected() {
        let (mut sim, hosts, _fct) = sim_with_stacks(2, 25_000_000_000, SimConfig::default());
        let h = hosts[0];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.with_driver(h, |d, ctx| {
                d.as_any_mut()
                    .downcast_mut::<HostStack>()
                    .unwrap()
                    .start_message(ctx, Message::new(h, 1000, CcKind::Dcqcn));
            });
        }));
        assert!(result.is_err(), "self-addressed message must panic");
    }

    #[test]
    fn fct_stats_slice_by_tag() {
        let (mut sim, hosts, fct) = sim_with_stacks(3, 25_000_000_000, SimConfig::default());
        for k in 0..10u64 {
            crate::schedule_message(
                &mut sim,
                hosts[0],
                SimTime::from_us(k * 50),
                Message::new(hosts[2], 10_000, CcKind::Dcqcn).with_tag(k % 2),
            );
        }
        sim.run_until(SimTime::from_ms(20));
        let f = fct.borrow();
        assert_eq!(f.stats(|r| r.tag == 0).count, 5);
        assert_eq!(f.stats(|r| r.tag == 1).count, 5);
    }

    #[test]
    fn mixed_transports_coexist() {
        let (mut sim, hosts, fct) = sim_with_stacks(3, 25_000_000_000, SimConfig::default());
        crate::schedule_message(
            &mut sim,
            hosts[0],
            SimTime::ZERO,
            Message::new(hosts[2], 3_000_000, CcKind::Dcqcn),
        );
        crate::schedule_message(
            &mut sim,
            hosts[1],
            SimTime::ZERO,
            Message::new(hosts[2], 3_000_000, CcKind::Reno),
        );
        sim.run_until(SimTime::from_ms(100));
        assert_eq!(fct.borrow().completed_count(), 2);
    }
}
