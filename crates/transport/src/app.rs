//! Closed-loop application hook.
//!
//! Open-loop workloads (Poisson arrivals, incast waves) pre-schedule their
//! messages. Closed-loop applications — the paper's distributed-storage and
//! parameter-server models — instead react to completions: an IO response is
//! sent when the request arrives, the next iteration starts when all
//! gradients arrived, and so on.
//!
//! The hook fires at the *receiving* host when a message's final byte is
//! consumed. Any follow-up messages it returns are started immediately from
//! that same host — which mirrors reality: a node can only react to what it
//! has observed locally, and cross-node reactions require a message (which
//! the model sends explicitly).

use crate::msg::Message;
use netsim::prelude::*;

/// A completed message as seen by the hook.
#[derive(Clone, Copy, Debug)]
pub struct CompletedMsg {
    /// The flow that carried it.
    pub flow: FlowId,
    /// Sender.
    pub src: NodeId,
    /// Receiver (= the host where the hook is firing).
    pub dst: NodeId,
    /// Message size.
    pub bytes: u64,
    /// Application tag given at send time.
    pub tag: u64,
    /// When the sender started it.
    pub start: SimTime,
    /// Completion time (now).
    pub end: SimTime,
}

/// Application logic shared by all host stacks of a simulation.
pub trait AppHook {
    /// `msg` finished arriving at `msg.dst` at time `msg.end`. Returns
    /// messages to start *from that host*, each after the given delay
    /// (`SimTime::ZERO` = immediately). Non-zero delays model local work
    /// before the response leaves the node — an SSD access, a GPU batch, a
    /// request-processing budget.
    fn on_message_received(&mut self, msg: &CompletedMsg) -> Vec<(SimTime, Message)>;
}
