//! Window-based transports: TCP Reno and DCTCP.
//!
//! Both share one state machine: a byte-based congestion window, go-back-N
//! retransmission (cumulative ACKs, fast retransmit on three duplicate ACKs,
//! a retransmission timeout), and slow start / congestion avoidance. DCTCP
//! (Alizadeh et al., SIGCOMM'10) adds per-window ECN accounting: the receiver
//! echoes CE per ACK, the sender maintains the marked fraction estimate
//! `alpha ← (1-g)·alpha + g·F` and cuts `cwnd` by `alpha/2` once per window
//! in which marks were seen. Reno is ECN-unaware (its packets are Not-ECT and
//! are tail-dropped by the switch instead).

use serde::{Deserialize, Serialize};

/// Which flavour of the window machinery a flow runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WindowFlavor {
    /// ECN-unaware AIMD.
    Reno,
    /// ECN-fraction-proportional backoff.
    Dctcp,
}

/// Parameters for the window transports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Initial congestion window, in segments.
    pub init_cwnd_segments: u32,
    /// DCTCP EWMA gain.
    pub dctcp_g: f64,
    /// Fixed retransmission timeout (datacenter-tuned).
    pub rto: netsim::SimTime,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Maximum congestion window in bytes (flow control stand-in).
    pub max_cwnd_bytes: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            init_cwnd_segments: 10,
            dctcp_g: 1.0 / 16.0,
            rto: netsim::SimTime::from_us(500),
            dupack_threshold: 3,
            max_cwnd_bytes: 4.0 * 1024.0 * 1024.0,
        }
    }
}

/// What the state machine asks the stack to do after processing an ACK.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AckAction {
    /// Keep sending within the (possibly updated) window.
    Continue,
    /// Go-back-N: rewind `snd_nxt` to `snd_una` and resend.
    Retransmit,
}

/// Per-flow sender state for Reno/DCTCP.
#[derive(Clone, Debug)]
pub struct WindowState {
    /// Reno or DCTCP.
    pub flavor: WindowFlavor,
    /// Congestion window, bytes.
    pub cwnd: f64,
    /// Slow-start threshold, bytes.
    pub ssthresh: f64,
    /// Maximum segment size, bytes.
    pub mss: f64,
    /// Consecutive duplicate ACKs seen.
    pub dupacks: u32,
    /// DCTCP marked-fraction estimate.
    pub alpha: f64,
    /// Byte offset ending the current DCTCP observation window.
    pub window_end: u64,
    /// Bytes acked in the current observation window.
    pub acked_in_window: u64,
    /// CE-echoed bytes acked in the current observation window.
    pub marked_in_window: u64,
    /// An RTO timer is outstanding.
    pub rto_pending: bool,
    /// Time of the last forward progress (for the RTO check).
    pub last_progress: netsim::SimTime,
}

impl WindowState {
    /// Fresh state for a flow with segment size `mss`.
    pub fn new(flavor: WindowFlavor, cfg: &WindowConfig, mss: u32, now: netsim::SimTime) -> Self {
        WindowState {
            flavor,
            cwnd: cfg.init_cwnd_segments as f64 * mss as f64,
            ssthresh: cfg.max_cwnd_bytes,
            mss: mss as f64,
            dupacks: 0,
            alpha: 0.0,
            window_end: 0,
            acked_in_window: 0,
            marked_in_window: 0,
            rto_pending: false,
            last_progress: now,
        }
    }

    /// Process a cumulative ACK.
    ///
    /// `snd_una` / `snd_nxt` are the flow's pre-ACK send pointers; the caller
    /// updates `snd_una` to `max(snd_una, cum_ack)` afterwards.
    pub fn on_ack(
        &mut self,
        cfg: &WindowConfig,
        cum_ack: u64,
        ce_echo: bool,
        snd_una: u64,
        snd_nxt: u64,
        now: netsim::SimTime,
    ) -> AckAction {
        if cum_ack > snd_una {
            let newly = cum_ack - snd_una;
            self.dupacks = 0;
            self.last_progress = now;

            // DCTCP per-window ECN accounting.
            if self.flavor == WindowFlavor::Dctcp {
                self.acked_in_window += newly;
                if ce_echo {
                    self.marked_in_window += newly;
                }
                if cum_ack >= self.window_end {
                    let f = if self.acked_in_window > 0 {
                        self.marked_in_window as f64 / self.acked_in_window as f64
                    } else {
                        0.0
                    };
                    self.alpha = (1.0 - cfg.dctcp_g) * self.alpha + cfg.dctcp_g * f;
                    if self.marked_in_window > 0 {
                        self.cwnd *= 1.0 - self.alpha / 2.0;
                        self.cwnd = self.cwnd.max(self.mss);
                        self.ssthresh = self.cwnd;
                    }
                    self.acked_in_window = 0;
                    self.marked_in_window = 0;
                    self.window_end = snd_nxt;
                }
            }

            // Growth: slow start below ssthresh, else congestion avoidance.
            if self.cwnd < self.ssthresh {
                self.cwnd += newly as f64;
            } else {
                self.cwnd += self.mss * newly as f64 / self.cwnd;
            }
            self.cwnd = self.cwnd.min(cfg.max_cwnd_bytes);
            AckAction::Continue
        } else {
            // Duplicate ACK (only meaningful if data is outstanding).
            if snd_nxt > snd_una {
                self.dupacks += 1;
                if self.dupacks >= cfg.dupack_threshold {
                    self.dupacks = 0;
                    self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
                    self.cwnd = self.ssthresh;
                    self.last_progress = now;
                    return AckAction::Retransmit;
                }
            }
            AckAction::Continue
        }
    }

    /// Retransmission timeout fired (and the quiet period really elapsed).
    pub fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
        self.dupacks = 0;
    }

    /// Usable window: how many more bytes may be in flight.
    pub fn usable(&self, snd_una: u64, snd_nxt: u64) -> u64 {
        let inflight = snd_nxt - snd_una;
        (self.cwnd as u64).saturating_sub(inflight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    fn mkstate(flavor: WindowFlavor) -> (WindowConfig, WindowState) {
        let cfg = WindowConfig::default();
        let st = WindowState::new(flavor, &cfg, 1000, SimTime::ZERO);
        (cfg, st)
    }

    #[test]
    fn initial_window() {
        let (_, s) = mkstate(WindowFlavor::Reno);
        assert_eq!(s.cwnd, 10_000.0);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let (cfg, mut s) = mkstate(WindowFlavor::Reno);
        // Ack a full window: cwnd should double.
        let w = s.cwnd as u64;
        s.on_ack(&cfg, w, false, 0, w, SimTime::from_us(10));
        assert_eq!(s.cwnd, 20_000.0);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let (cfg, mut s) = mkstate(WindowFlavor::Reno);
        s.ssthresh = 10_000.0; // at threshold -> CA
        let w = s.cwnd as u64;
        s.on_ack(&cfg, w, false, 0, w, SimTime::from_us(10));
        // cwnd += mss * acked/cwnd = 1000 * 10000/10000 = 1000 (one MSS/RTT).
        assert_eq!(s.cwnd, 11_000.0);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let (cfg, mut s) = mkstate(WindowFlavor::Reno);
        s.cwnd = 40_000.0;
        let mut act = AckAction::Continue;
        for _ in 0..3 {
            act = s.on_ack(&cfg, 5_000, false, 5_000, 30_000, SimTime::from_us(10));
        }
        assert_eq!(act, AckAction::Retransmit);
        assert_eq!(s.cwnd, 20_000.0);
    }

    #[test]
    fn dupacks_without_outstanding_data_ignored() {
        let (cfg, mut s) = mkstate(WindowFlavor::Reno);
        for _ in 0..10 {
            let act = s.on_ack(&cfg, 5_000, false, 5_000, 5_000, SimTime::ZERO);
            assert_eq!(act, AckAction::Continue);
        }
        assert_eq!(s.dupacks, 0);
    }

    #[test]
    fn rto_collapses_window() {
        let (_, mut s) = mkstate(WindowFlavor::Reno);
        s.cwnd = 50_000.0;
        s.on_rto();
        assert_eq!(s.cwnd, 1000.0);
        assert_eq!(s.ssthresh, 25_000.0);
    }

    #[test]
    fn dctcp_alpha_tracks_mark_fraction() {
        let (cfg, mut s) = mkstate(WindowFlavor::Dctcp);
        s.ssthresh = 1.0; // force CA so growth is small
                          // Simulate many windows fully marked: alpha -> 1.
        let mut una = 0u64;
        for _ in 0..200 {
            let nxt = una + 10_000;
            s.window_end = s.window_end.max(una);
            s.on_ack(&cfg, nxt, true, una, nxt, SimTime::from_us(1));
            una = nxt;
        }
        assert!(s.alpha > 0.9, "alpha={}", s.alpha);
    }

    #[test]
    fn dctcp_unmarked_windows_decay_alpha() {
        let (cfg, mut s) = mkstate(WindowFlavor::Dctcp);
        s.alpha = 1.0;
        let mut una = 0u64;
        for _ in 0..100 {
            let nxt = una + 10_000;
            s.on_ack(&cfg, nxt, false, una, nxt, SimTime::from_us(1));
            una = nxt;
        }
        assert!(s.alpha < 0.01, "alpha={}", s.alpha);
    }

    #[test]
    fn dctcp_gentle_cut_with_small_alpha() {
        let (cfg, mut s) = mkstate(WindowFlavor::Dctcp);
        s.cwnd = 100_000.0;
        s.ssthresh = 1.0;
        s.alpha = 0.0;
        // One lightly-marked window: cut should be much gentler than half.
        s.window_end = 10_000;
        s.on_ack(&cfg, 10_000, true, 0, 10_000, SimTime::from_us(1));
        assert!(s.cwnd > 90_000.0, "cwnd={}", s.cwnd);
    }

    #[test]
    fn usable_window() {
        let (_, mut s) = mkstate(WindowFlavor::Reno);
        s.cwnd = 10_000.0;
        assert_eq!(s.usable(0, 4_000), 6_000);
        assert_eq!(s.usable(0, 10_000), 0);
        assert_eq!(s.usable(0, 15_000), 0);
    }
}
