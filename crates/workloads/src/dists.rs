//! Heavy-tailed flow-size distributions (Fig. 11).
//!
//! The paper drives its large-scale simulations with the two canonical DCN
//! workloads: *Web Search* (from the DCTCP measurement study) and
//! *Data Mining* (from the VL2 study). Both are heavy-tailed — most flows
//! are mice, most bytes belong to elephants. We encode them as piecewise
//! log-linear empirical CDFs whose knot points approximate the published
//! curves (the exact traces are not public; the approximation preserves the
//! properties the experiments depend on: the mice/elephant split, the mean,
//! and the tail weight). Data-mining flow sizes are capped at 30 MB to keep
//! packet-level simulation tractable — the same cap DCN simulators commonly
//! apply.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical flow-size distribution: piecewise-linear CDF over size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SizeDist {
    name: String,
    /// `(size_bytes, cdf)` knots, strictly increasing in both coordinates,
    /// first cdf 0.0, last cdf 1.0.
    points: Vec<(u64, f64)>,
}

impl SizeDist {
    /// Build from explicit CDF knots.
    pub fn new(name: impl Into<String>, points: Vec<(u64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two knots");
        assert_eq!(points[0].1, 0.0, "CDF must start at 0");
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-12,
            "CDF must end at 1"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
        SizeDist {
            name: name.into(),
            points,
        }
    }

    /// The Web-Search-style workload: mean ≈ 1.6 MB, ~60% of flows under
    /// 100 KB but ~95% of bytes in flows over 1 MB.
    pub fn web_search() -> Self {
        SizeDist::new(
            "WebSearch",
            vec![
                (1_000, 0.0),
                (10_000, 0.15),
                (20_000, 0.20),
                (30_000, 0.30),
                (50_000, 0.40),
                (80_000, 0.53),
                (200_000, 0.60),
                (1_000_000, 0.70),
                (2_000_000, 0.80),
                (5_000_000, 0.90),
                (10_000_000, 0.97),
                (30_000_000, 1.0),
            ],
        )
    }

    /// The Data-Mining-style workload: ~80% of flows under 10 KB, the rest
    /// of the mass far out in the tail (capped at 30 MB).
    pub fn data_mining() -> Self {
        SizeDist::new(
            "DataMining",
            vec![
                (100, 0.0),
                (350, 0.10),
                (600, 0.20),
                (1_000, 0.30),
                (2_000, 0.50),
                (10_000, 0.60),
                (100_000, 0.70),
                (1_000_000, 0.80),
                (10_000_000, 0.90),
                (30_000_000, 1.0),
            ],
        )
    }

    /// The storage-stress message mix used in the paper's end-to-end
    /// micro-benchmark (§5.2): uniform choice among
    /// {1 KB, 10 KB, 100 KB, 1 MB, 10 MB}.
    pub fn message_mix() -> Self {
        // Encoded as a (nearly) stepwise CDF: each size gets 20% of mass.
        SizeDist::new(
            "MsgMix",
            vec![
                (999, 0.0),
                (1_000, 0.2),
                (10_000, 0.4),
                (100_000, 0.6),
                (1_000_000, 0.8),
                (10_000_000, 1.0),
            ],
        )
    }

    /// Name for experiment output.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CDF knots.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Sample one flow size.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        // Find the segment containing u and interpolate in log-size space
        // (heavy-tailed data is linear-ish in log space).
        for w in self.points.windows(2) {
            let (s0, c0) = w[0];
            let (s1, c1) = w[1];
            if u <= c1 {
                if c1 == c0 {
                    return s1;
                }
                let f = (u - c0) / (c1 - c0);
                let ls0 = (s0 as f64).ln();
                let ls1 = (s1 as f64).ln();
                let s = (ls0 + f * (ls1 - ls0)).exp();
                return (s.round() as u64).clamp(s0, s1).max(1);
            }
        }
        self.points.last().unwrap().0
    }

    /// CDF value at `bytes` (linear interpolation in log-size space).
    pub fn cdf(&self, bytes: u64) -> f64 {
        if bytes <= self.points[0].0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let (s0, c0) = w[0];
            let (s1, c1) = w[1];
            if bytes <= s1 {
                let f = ((bytes as f64).ln() - (s0 as f64).ln())
                    / ((s1 as f64).ln() - (s0 as f64).ln());
                return c0 + f * (c1 - c0);
            }
        }
        1.0
    }

    /// Analytic mean of the log-linear interpolated distribution, estimated
    /// by fine numeric integration (cheap, called once per experiment).
    pub fn mean_bytes(&self) -> f64 {
        // E[S] = ∫ S dCDF; integrate each segment with small steps in cdf.
        let mut mean = 0.0;
        for w in self.points.windows(2) {
            let (s0, c0) = w[0];
            let (s1, c1) = w[1];
            let dc = c1 - c0;
            if dc == 0.0 {
                continue;
            }
            const STEPS: usize = 64;
            let ls0 = (s0 as f64).ln();
            let ls1 = (s1 as f64).ln();
            for i in 0..STEPS {
                let f = (i as f64 + 0.5) / STEPS as f64;
                let s = (ls0 + f * (ls1 - ls0)).exp();
                mean += s * dc / STEPS as f64;
            }
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn both_workloads_are_heavy_tailed() {
        let ws = SizeDist::web_search();
        let dm = SizeDist::data_mining();
        // Mice fraction (<100KB): WebSearch ~60%+, DataMining ~70%+.
        assert!(ws.cdf(100_000) >= 0.5);
        assert!(dm.cdf(100_000) >= 0.65);
        // Yet the mean is dominated by the tail (way above the median).
        assert!(ws.mean_bytes() > 1_000_000.0);
        assert!(dm.mean_bytes() > 1_000_000.0);
    }

    #[test]
    fn sampling_matches_cdf() {
        let dist = SizeDist::web_search();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let mut below_100k = 0;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = dist.sample(&mut rng);
            assert!((1_000..=30_000_000).contains(&s));
            if s <= 100_000 {
                below_100k += 1;
            }
            sum += s as f64;
        }
        let frac = below_100k as f64 / n as f64;
        let expect = dist.cdf(100_000);
        assert!(
            (frac - expect).abs() < 0.02,
            "empirical {frac} vs cdf {expect}"
        );
        let mean = sum / n as f64;
        let amean = dist.mean_bytes();
        assert!(
            (mean - amean).abs() / amean < 0.1,
            "empirical mean {mean} vs analytic {amean}"
        );
    }

    #[test]
    fn message_mix_hits_the_five_sizes() {
        let dist = SizeDist::message_mix();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut small = 0;
        for _ in 0..10_000 {
            let s = dist.sample(&mut rng);
            assert!((999..=10_000_000).contains(&s));
            if s <= 1_000 {
                small += 1;
            }
        }
        // ~20% of samples should be the 1KB step.
        assert!((small as f64 / 10_000.0 - 0.2).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "CDF must start")]
    fn invalid_cdf_rejected() {
        SizeDist::new("bad", vec![(10, 0.5), (20, 1.0)]);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let dist = SizeDist::data_mining();
        let mut prev = -1.0;
        for s in [1u64, 100, 1_000, 10_000, 1_000_000, 100_000_000] {
            let c = dist.cdf(s);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(dist.cdf(u64::MAX), 1.0);
    }
}
