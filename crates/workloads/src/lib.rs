//! # workloads — traffic and application models for the ACC evaluation
//!
//! Everything the paper throws at the network, as reusable generators:
//!
//! * [`dists`] — heavy-tailed flow-size distributions approximating the
//!   Web Search (DCTCP) and Data Mining (VL2) workloads of Fig. 11;
//! * [`gen`] — open-loop generators: Poisson arrivals at a target load
//!   (random source/destination pairs) and N-to-1 incast waves, plus the
//!   heterogeneous pattern switching used in Fig. 6/16;
//! * [`storage`] — a closed-loop distributed-storage cluster (FIO-style
//!   profiles of Table 1: OLTP, OLAP, VDI, Exchange, Video, Backup) with
//!   read/write ratios, block-size ranges, IO-depth concurrency and write
//!   replication, measured in IOPS (§5.3.1);
//! * [`training`] — a parameter-server distributed-training cluster
//!   (gradient push / model pull per iteration) measured in iterations/s
//!   (§5.3.2);
//! * [`xl`] — 100–1000×-scale scenarios for the flow-level backend
//!   (`paper_xl_flows`) and the `Arrival` → `FlowSpec` bridge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apptag;
pub mod dists;
pub mod gen;
pub mod replay;
pub mod storage;
pub mod training;
pub mod xl;

pub use dists::SizeDist;
pub use gen::{apply_arrivals, incast_wave, Arrival, PoissonGen};
pub use replay::WorkloadTrace;
pub use storage::{StorageCluster, StorageConfig, StorageProfile};
pub use training::{TrainingCluster, TrainingConfig};
pub use xl::{to_flow_specs, XlFlowsSpec};

// Send/Sync audit for the parallel run-matrix executor: workload specs and
// generated arrival lists are captured by matrix cells and must cross
// worker threads.
#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn matrix_cell_inputs_cross_threads() {
        assert_send_sync::<SizeDist>();
        assert_send_sync::<Arrival>();
        assert_send_sync::<PoissonGen>();
        assert_send_sync::<StorageConfig>();
        assert_send_sync::<StorageProfile>();
        assert_send_sync::<TrainingConfig>();
    }
}
