//! The closed-loop distributed-storage application model (§5.3.1, Table 1).
//!
//! Servers are split 3:1 into *compute* and *storage* nodes. Each compute
//! node keeps `io_depth` IOs outstanding (the FIO `iodepth` knob). Per IO,
//! a weighted coin picks read vs. write according to the profile's
//! read:write ratio, and the block size is drawn log-uniformly from the
//! profile's range:
//!
//! * **Read** — compute sends a 256 B request to a random storage node; the
//!   storage node "accesses the device" (a fixed latency) and streams the
//!   block back; completion of the block at the compute node finishes the IO.
//! * **Write** — compute streams the block to a random storage node; the
//!   storage node forwards a replica to `replication` other storage nodes;
//!   each replica acknowledges with a 64 B message; once all replica ACKs
//!   are in, the storage node sends a 256 B completion to the compute node.
//!
//! IOPS — the metric customers see (§6, footnote 5) — is completed IOs per
//! second, and is network-bound in exactly the way the paper describes:
//! reads stress storage→compute incast, writes stress the storage backplane.

use netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use transport::{AppHook, CcKind, CompletedMsg, Message};

/// Message-tag type field (bits 56..60 of the tag; bits 60..64 carry the
/// application id so co-resident apps — see [`crate::apptag`] — never
/// interpret each other's messages).
const T_READ_REQ: u64 = 1;
const T_READ_RESP: u64 = 2;
const T_WRITE_DATA: u64 = 3;
const T_REPL_DATA: u64 = 4;
const T_REPL_ACK: u64 = 5;
const T_WRITE_ACK: u64 = 6;

use crate::apptag::{self, APP_STORAGE};

#[inline]
fn tag(ty: u64, io: u64) -> u64 {
    apptag::tag(APP_STORAGE, ty, io)
}
#[inline]
fn tag_ty(t: u64) -> u64 {
    apptag::ty(t)
}
#[inline]
fn tag_io(t: u64) -> u64 {
    apptag::payload(t)
}

/// One of the Table-1 traffic profiles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StorageProfile {
    /// Profile name as in Table 1.
    pub name: &'static str,
    /// Fraction of IOs that are reads (e.g. 0.5 for a 5:5 ratio).
    pub read_frac: f64,
    /// Smallest block size, bytes.
    pub block_min: u64,
    /// Largest block size, bytes (log-uniform between the two).
    pub block_max: u64,
}

impl StorageProfile {
    /// OLTP: 5:5 read:write, 512 B – 64 KB.
    pub fn oltp() -> Self {
        StorageProfile {
            name: "OLTP",
            read_frac: 0.5,
            block_min: 512,
            block_max: 64 * 1024,
        }
    }
    /// OLAP: 5:5, 256 KB – 4 MB.
    pub fn olap() -> Self {
        StorageProfile {
            name: "OLAP",
            read_frac: 0.5,
            block_min: 256 * 1024,
            block_max: 4 * 1024 * 1024,
        }
    }
    /// VDI: 2:8, 1 KB – 64 KB.
    pub fn vdi() -> Self {
        StorageProfile {
            name: "VDI",
            read_frac: 0.2,
            block_min: 1024,
            block_max: 64 * 1024,
        }
    }
    /// Exchange server: 6:4, 32 KB – 512 KB.
    pub fn exchange() -> Self {
        StorageProfile {
            name: "ExchangeServer",
            read_frac: 0.6,
            block_min: 32 * 1024,
            block_max: 512 * 1024,
        }
    }
    /// Video streaming: 2:8, 64 KB fixed.
    pub fn video() -> Self {
        StorageProfile {
            name: "VideoStreaming",
            read_frac: 0.2,
            block_min: 64 * 1024,
            block_max: 64 * 1024,
        }
    }
    /// File backup: 4:6, 16 KB – 64 KB.
    pub fn backup() -> Self {
        StorageProfile {
            name: "FileBackup",
            read_frac: 0.4,
            block_min: 16 * 1024,
            block_max: 64 * 1024,
        }
    }

    /// All six Table-1 profiles, in the paper's order.
    pub fn all() -> Vec<StorageProfile> {
        vec![
            Self::oltp(),
            Self::olap(),
            Self::vdi(),
            Self::exchange(),
            Self::video(),
            Self::backup(),
        ]
    }

    fn sample_block(&self, rng: &mut SmallRng) -> u64 {
        if self.block_min == self.block_max {
            return self.block_min;
        }
        let lo = (self.block_min as f64).ln();
        let hi = (self.block_max as f64).ln();
        ((lo + rng.gen::<f64>() * (hi - lo)).exp() as u64).clamp(self.block_min, self.block_max)
    }
}

/// Cluster-level knobs.
#[derive(Clone, Debug)]
pub struct StorageConfig {
    /// The Table-1 profile to run.
    pub profile: StorageProfile,
    /// Outstanding IOs per compute node.
    pub io_depth: usize,
    /// Extra replicas per write.
    pub replication: usize,
    /// Device access latency added before a read response leaves a storage
    /// node (NVMe-class).
    pub device_latency: SimTime,
    /// Transport for all storage traffic (the paper uses RDMA between
    /// storage nodes and for the benchmark cluster).
    pub cc: CcKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            profile: StorageProfile::oltp(),
            io_depth: 16,
            replication: 2,
            device_latency: SimTime::from_us(20),
            cc: CcKind::Dcqcn,
            seed: 1,
        }
    }
}

struct WriteState {
    compute: NodeId,
    acks_pending: usize,
}

struct IoState {
    issued_at: SimTime,
    is_read: bool,
}

/// The cluster model; implements [`AppHook`].
pub struct StorageCluster {
    cfg: StorageConfig,
    compute: Vec<NodeId>,
    storage: Vec<NodeId>,
    rng: SmallRng,
    next_io: u64,
    writes: HashMap<u64, WriteState>,
    ios: HashMap<u64, IoState>,
    /// Completion log: (time, io latency, was_read).
    pub completions: Vec<(SimTime, SimTime, bool)>,
    /// Closed-loop cutoff: completions at or after this time do not
    /// reissue. Lets a soak phase drain instead of running forever.
    deadline: Option<SimTime>,
}

impl StorageCluster {
    /// Split `hosts` 3:1 into compute and storage nodes and build the model.
    pub fn new(hosts: &[NodeId], cfg: StorageConfig) -> Self {
        assert!(hosts.len() >= 4, "need at least 4 hosts for a 3:1 split");
        let n_storage = (hosts.len() / 4).max(2);
        let (compute, storage) = hosts.split_at(hosts.len() - n_storage);
        // A write needs `replication` storage nodes besides the primary;
        // small clusters clamp the factor rather than fail.
        let mut cfg = cfg;
        cfg.replication = cfg.replication.min(storage.len() - 1);
        let seed = cfg.seed;
        StorageCluster {
            cfg,
            compute: compute.to_vec(),
            storage: storage.to_vec(),
            rng: SmallRng::seed_from_u64(seed),
            next_io: 0,
            writes: HashMap::new(),
            ios: HashMap::new(),
            completions: Vec::new(),
            deadline: None,
        }
    }

    /// Stop issuing new IOs at `at` (in-flight chains still complete).
    /// `None` restores the indefinite closed loop.
    pub fn set_deadline(&mut self, at: Option<SimTime>) {
        self.deadline = at;
    }

    fn past_deadline(&self, now: SimTime) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Compute nodes of the cluster.
    pub fn compute_nodes(&self) -> &[NodeId] {
        &self.compute
    }

    /// Storage nodes of the cluster.
    pub fn storage_nodes(&self) -> &[NodeId] {
        &self.storage
    }

    /// The initial message batch: `io_depth` IOs per compute node. Schedule
    /// these before running the simulation.
    pub fn initial_arrivals(&mut self, start: SimTime) -> Vec<crate::gen::Arrival> {
        let mut out = Vec::new();
        for ci in 0..self.compute.len() {
            for _ in 0..self.cfg.io_depth {
                let (src, msg) = self.issue_io(ci, start);
                out.push(crate::gen::Arrival {
                    src,
                    at: start,
                    msg,
                });
            }
        }
        out
    }

    /// Issue one new IO from compute node index `ci`; returns the first
    /// message of its chain.
    fn issue_io(&mut self, ci: usize, now: SimTime) -> (NodeId, Message) {
        let io = self.next_io;
        self.next_io += 1;
        let compute = self.compute[ci];
        let storage = self.storage[self.rng.gen_range(0..self.storage.len())];
        let is_read = self.rng.gen::<f64>() < self.cfg.profile.read_frac;
        let block = self.cfg.profile.sample_block(&mut self.rng);
        self.ios.insert(
            io,
            IoState {
                issued_at: now,
                is_read,
            },
        );
        let msg = if is_read {
            // The request carries the block size in its low tag bits via the
            // write map (reads reuse `writes` to remember the block size).
            self.writes.insert(
                io,
                WriteState {
                    compute,
                    acks_pending: block as usize, // stash block size
                },
            );
            Message::new(storage, 256, self.cfg.cc).with_tag(tag(T_READ_REQ, io))
        } else {
            Message::new(storage, block, self.cfg.cc).with_tag(tag(T_WRITE_DATA, io))
        };
        (compute, msg)
    }

    /// Record an IO completion (the caller then issues the next IO from the
    /// same compute node — the closed loop). Returns `false` for IOs this
    /// cluster never issued: after a soak phase rotation, responses to a
    /// *previous* cluster instance may still be in flight, and they must be
    /// ignored rather than counted (or panicked on).
    fn finish_io(&mut self, io: u64, now: SimTime) -> bool {
        match self.ios.remove(&io) {
            Some(st) => {
                self.completions.push((now, now - st.issued_at, st.is_read));
                true
            }
            None => false,
        }
    }

    /// Completed IOs per second over `[from, to)`.
    pub fn iops(&self, from: SimTime, to: SimTime) -> f64 {
        let n = self
            .completions
            .iter()
            .filter(|(t, _, _)| *t >= from && *t < to)
            .count();
        n as f64 / (to - from).as_secs_f64()
    }

    /// Mean IO latency over all completions, microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions
            .iter()
            .map(|(_, l, _)| l.as_us_f64())
            .sum::<f64>()
            / self.completions.len() as f64
    }
}

impl AppHook for StorageCluster {
    fn on_message_received(&mut self, m: &CompletedMsg) -> Vec<(SimTime, Message)> {
        if apptag::app(m.tag) != APP_STORAGE {
            // Another app's (or untagged) traffic on shared host stacks.
            return vec![];
        }
        let ty = tag_ty(m.tag);
        let io = tag_io(m.tag);
        match ty {
            T_READ_REQ => {
                // At the storage node: stream the block back after the
                // device access latency.
                let block = self
                    .writes
                    .remove(&io)
                    .map(|w| w.acks_pending as u64)
                    .unwrap_or(64 * 1024);
                vec![(
                    self.cfg.device_latency,
                    Message::new(m.src, block, self.cfg.cc).with_tag(tag(T_READ_RESP, io)),
                )]
            }
            T_READ_RESP => {
                // At the compute node: IO done; issue the next one (unless
                // the IO is a stale predecessor's or the phase is draining).
                let now = m.end;
                if !self.finish_io(io, now) || self.past_deadline(now) {
                    return vec![];
                }
                let Some(ci) = self.compute.iter().position(|&c| c == m.dst) else {
                    return vec![];
                };
                let (src, msg) = self.issue_io(ci, now);
                debug_assert_eq!(src, m.dst);
                vec![(SimTime::ZERO, msg)]
            }
            T_WRITE_DATA => {
                // At the primary storage node: replicate after the device
                // write latency.
                let replicas: Vec<NodeId> = {
                    let mut cand: Vec<NodeId> = self
                        .storage
                        .iter()
                        .copied()
                        .filter(|&s| s != m.dst)
                        .collect();
                    for i in 0..self.cfg.replication.min(cand.len()) {
                        let j = self.rng.gen_range(i..cand.len());
                        cand.swap(i, j);
                    }
                    cand.truncate(self.cfg.replication);
                    cand
                };
                self.writes.insert(
                    io,
                    WriteState {
                        compute: m.src,
                        acks_pending: replicas.len(),
                    },
                );
                if replicas.is_empty() {
                    // No replication: acknowledge straight away.
                    let w = self.writes.remove(&io).unwrap();
                    return vec![(
                        self.cfg.device_latency,
                        Message::new(w.compute, 256, self.cfg.cc).with_tag(tag(T_WRITE_ACK, io)),
                    )];
                }
                replicas
                    .into_iter()
                    .map(|r| {
                        (
                            self.cfg.device_latency,
                            Message::new(r, m.bytes, self.cfg.cc).with_tag(tag(T_REPL_DATA, io)),
                        )
                    })
                    .collect()
            }
            T_REPL_DATA => {
                // At a replica: persist, then ack the primary.
                vec![(
                    self.cfg.device_latency,
                    Message::new(m.src, 64, self.cfg.cc).with_tag(tag(T_REPL_ACK, io)),
                )]
            }
            T_REPL_ACK => {
                // At the primary: when all replicas answered, complete to the
                // compute node. Unknown writes are stale cross-phase acks.
                let done = {
                    let Some(w) = self.writes.get_mut(&io) else {
                        return vec![];
                    };
                    w.acks_pending -= 1;
                    w.acks_pending == 0
                };
                if done {
                    let w = self.writes.remove(&io).unwrap();
                    vec![(
                        SimTime::ZERO,
                        Message::new(w.compute, 256, self.cfg.cc).with_tag(tag(T_WRITE_ACK, io)),
                    )]
                } else {
                    vec![]
                }
            }
            T_WRITE_ACK => {
                // At the compute node: IO done; issue the next one (same
                // stale/drain handling as reads).
                let now = m.end;
                if !self.finish_io(io, now) || self.past_deadline(now) {
                    return vec![];
                }
                let Some(ci) = self.compute.iter().position(|&c| c == m.dst) else {
                    return vec![];
                };
                let (src, msg) = self.issue_io(ci, now);
                debug_assert_eq!(src, m.dst);
                vec![(SimTime::ZERO, msg)]
            }
            // Foreign messages (probes, other apps) are not ours to react to.
            _ => vec![],
        }
    }
}

/// Shared handle used when wiring the cluster into the simulator.
pub type SharedStorage = Rc<RefCell<StorageCluster>>;

#[cfg(test)]
mod tests {
    use super::*;
    use transport::{FctCollector, StackConfig};

    fn run_cluster(profile: StorageProfile, io_depth: usize, ms: u64) -> (f64, usize) {
        let topo = TopologySpec::single_switch(8, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        let cfg = StorageConfig {
            profile,
            io_depth,
            ..Default::default()
        };
        let cluster = Rc::new(RefCell::new(StorageCluster::new(&hosts, cfg)));
        transport::set_app_hook(&mut sim, cluster.clone());
        let init = cluster.borrow_mut().initial_arrivals(SimTime::ZERO);
        crate::gen::apply_arrivals(&mut sim, &init);
        let horizon = SimTime::from_ms(ms);
        sim.run_until(horizon);
        let c = cluster.borrow();
        (c.iops(SimTime::ZERO, horizon), c.completions.len())
    }

    #[test]
    fn profiles_match_table1() {
        let all = StorageProfile::all();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].name, "OLTP");
        assert!((all[2].read_frac - 0.2).abs() < 1e-12, "VDI is 2:8");
        assert_eq!(all[4].block_min, all[4].block_max, "video is fixed 64KB");
        assert_eq!(all[1].block_max, 4 * 1024 * 1024, "OLAP up to 4MB");
    }

    #[test]
    fn block_sampling_in_range() {
        let p = StorageProfile::oltp();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let b = p.sample_block(&mut rng);
            assert!((p.block_min..=p.block_max).contains(&b));
        }
    }

    #[test]
    fn cluster_sustains_closed_loop() {
        let (iops, completed) = run_cluster(StorageProfile::oltp(), 4, 20);
        assert!(completed > 100, "only {completed} IOs in 20ms");
        assert!(iops > 5_000.0, "iops={iops}");
    }

    #[test]
    fn reads_and_writes_both_complete() {
        let topo = TopologySpec::single_switch(8, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        let cluster = Rc::new(RefCell::new(StorageCluster::new(
            &hosts,
            StorageConfig::default(),
        )));
        transport::set_app_hook(&mut sim, cluster.clone());
        let init = cluster.borrow_mut().initial_arrivals(SimTime::ZERO);
        crate::gen::apply_arrivals(&mut sim, &init);
        sim.run_until(SimTime::from_ms(30));
        let c = cluster.borrow();
        let reads = c.completions.iter().filter(|(_, _, r)| *r).count();
        let writes = c.completions.len() - reads;
        assert!(reads > 20, "reads={reads}");
        assert!(writes > 20, "writes={writes}");
        // OLTP is 5:5; allow wide tolerance on a short run.
        let frac = reads as f64 / c.completions.len() as f64;
        assert!((0.3..0.7).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn deeper_iodepth_does_not_reduce_iops_when_unsaturated() {
        let (iops4, _) = run_cluster(StorageProfile::vdi(), 2, 20);
        let (iops16, _) = run_cluster(StorageProfile::vdi(), 8, 20);
        assert!(
            iops16 > iops4 * 1.2,
            "more outstanding IOs should raise IOPS: {iops4} vs {iops16}"
        );
    }

    #[test]
    fn split_is_three_to_one() {
        let hosts: Vec<NodeId> = (0..24).map(NodeId).collect();
        let c = StorageCluster::new(&hosts, StorageConfig::default());
        assert_eq!(c.compute_nodes().len(), 18);
        assert_eq!(c.storage_nodes().len(), 6);
    }
}
