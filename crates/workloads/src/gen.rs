//! Open-loop traffic generators: Poisson load and incast waves.

use crate::dists::SizeDist;
use netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use transport::{CcKind, Message};

/// One pre-computed flow arrival.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Sending host.
    pub src: NodeId,
    /// Start time.
    pub at: SimTime,
    /// The message.
    pub msg: Message,
}

/// Schedule a list of arrivals onto the simulation's host stacks.
///
/// The whole arrival list is known up front, so each host's stack is first
/// told exactly how many messages it will originate and terminate
/// ([`transport::reserve_stack`]); with that, running the scheduled workload
/// performs no flow-table growth — part of the zero-allocation steady-state
/// contract the perf gates assert.
///
/// In a sharded simulator only owned hosts carry stacks, so reservation and
/// scheduling skip foreign hosts. Filtering whole hosts preserves each
/// owned host's arrival order, which keeps per-host flow-id assignment (and
/// therefore the merged record streams) identical across shard counts.
pub fn apply_arrivals(sim: &mut Simulator, arrivals: &[Arrival]) {
    let mut counts: std::collections::HashMap<NodeId, (usize, usize)> = Default::default();
    for a in arrivals {
        counts.entry(a.src).or_default().0 += 1;
        counts.entry(a.msg.dst).or_default().1 += 1;
    }
    for (&host, &(n_send, n_recv)) in &counts {
        if !sim.core().owns_node(host) {
            continue;
        }
        transport::reserve_stack(sim, host, n_send, n_recv);
    }
    for a in arrivals {
        if !sim.core().owns_node(a.src) {
            continue;
        }
        transport::schedule_message(sim, a.src, a.at, a.msg);
    }
}

/// Poisson open-loop load generator over a set of hosts.
///
/// Flows arrive as a fleet-wide Poisson process whose rate is chosen so that
/// the *average offered load per host NIC* equals `load` (e.g. 0.6 = 60% of
/// every 25 Gbps access link, the convention of the paper's Fig. 12/13).
/// Sources and destinations are drawn uniformly (src ≠ dst); sizes come from
/// the configured [`SizeDist`].
#[derive(Clone, Debug)]
pub struct PoissonGen {
    /// Flow-size distribution.
    pub dist: SizeDist,
    /// Offered load as a fraction of per-host line rate.
    pub load: f64,
    /// Transport for the generated flows.
    pub cc: CcKind,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonGen {
    /// New generator.
    pub fn new(dist: SizeDist, load: f64, cc: CcKind, seed: u64) -> Self {
        assert!(load > 0.0 && load <= 1.5, "load out of range: {load}");
        PoissonGen {
            dist,
            load,
            cc,
            seed,
        }
    }

    /// Generate arrivals over `[start, start+duration)` among `hosts` whose
    /// NICs run at `host_bps`.
    pub fn generate(
        &self,
        hosts: &[NodeId],
        host_bps: u64,
        start: SimTime,
        duration: SimTime,
    ) -> Vec<Arrival> {
        assert!(hosts.len() >= 2, "need at least two hosts");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mean = self.dist.mean_bytes();
        // Aggregate flow arrival rate (flows/sec) so that the bytes injected
        // per host per second average load * host_bps / 8.
        let lambda = self.load * host_bps as f64 / 8.0 / mean * hosts.len() as f64;
        let mut out = Vec::new();
        let mut t = start.as_secs_f64();
        let end = (start + duration).as_secs_f64();
        loop {
            // Exponential inter-arrival.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() / lambda;
            if t >= end {
                break;
            }
            let src = hosts[rng.gen_range(0..hosts.len())];
            let dst = loop {
                let d = hosts[rng.gen_range(0..hosts.len())];
                if d != src {
                    break d;
                }
            };
            let bytes = self.dist.sample(&mut rng);
            out.push(Arrival {
                src,
                at: SimTime::from_secs_f64(t),
                msg: Message::new(dst, bytes, self.cc),
            });
        }
        out
    }
}

/// An N-to-1 incast wave: every sender starts `flows_per_sender` flows of
/// `bytes` to `receiver` at `start` (the PerfTest-style micro-benchmark of
/// §5.2 and Fig. 1).
pub fn incast_wave(
    senders: &[NodeId],
    receiver: NodeId,
    flows_per_sender: usize,
    bytes: u64,
    cc: CcKind,
    start: SimTime,
) -> Vec<Arrival> {
    assert!(
        !senders.contains(&receiver),
        "receiver cannot send to itself"
    );
    let mut out = Vec::with_capacity(senders.len() * flows_per_sender);
    for &s in senders {
        for _ in 0..flows_per_sender {
            out.push(Arrival {
                src: s,
                at: start,
                msg: Message::new(receiver, bytes, cc),
            });
        }
    }
    out
}

/// A random incast scenario in the style of the offline-training traffic
/// (§4.3): `p ∈ [2, max_senders]` random senders, `q ∈ [1, max_flows]` flows
/// each, message sizes log-uniform in `[10 KB, 10 MB]`.
pub fn random_incast(
    hosts: &[NodeId],
    max_senders: usize,
    max_flows: usize,
    cc: CcKind,
    start: SimTime,
    rng: &mut SmallRng,
) -> Vec<Arrival> {
    assert!(hosts.len() >= 3);
    let recv_idx = rng.gen_range(0..hosts.len());
    let receiver = hosts[recv_idx];
    let n_senders = rng.gen_range(2..=max_senders.min(hosts.len() - 1));
    let mut senders: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != receiver).collect();
    // Deterministic partial shuffle.
    for i in 0..n_senders {
        let j = rng.gen_range(i..senders.len());
        senders.swap(i, j);
    }
    senders.truncate(n_senders);
    let flows = rng.gen_range(1..=max_flows);
    let bytes = {
        let lo = (10_000f64).ln();
        let hi = (10_000_000f64).ln();
        (lo + rng.gen::<f64>() * (hi - lo)).exp() as u64
    };
    incast_wave(&senders, receiver, flows, bytes, cc, start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn poisson_load_injects_expected_bytes() {
        let hs = hosts(8);
        let gen = PoissonGen::new(SizeDist::web_search(), 0.5, CcKind::Dcqcn, 7);
        let dur = SimTime::from_ms(200);
        let arr = gen.generate(&hs, 25_000_000_000, SimTime::ZERO, dur);
        let total: u64 = arr.iter().map(|a| a.msg.bytes).sum();
        // Expected bytes = load * rate/8 * hosts * secs.
        let expect = 0.5 * 25e9 / 8.0 * 8.0 * 0.2;
        let ratio = total as f64 / expect;
        assert!(
            (0.8..1.25).contains(&ratio),
            "offered/expected = {ratio} (total {total})"
        );
        // Arrivals sorted in time and src != dst.
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for a in &arr {
            assert_ne!(a.src, a.msg.dst);
        }
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let hs = hosts(4);
        let g = PoissonGen::new(SizeDist::data_mining(), 0.3, CcKind::Dcqcn, 42);
        let a = g.generate(&hs, 25_000_000_000, SimTime::ZERO, SimTime::from_ms(50));
        let b = g.generate(&hs, 25_000_000_000, SimTime::ZERO, SimTime::from_ms(50));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.msg.bytes, y.msg.bytes);
        }
    }

    #[test]
    fn incast_wave_shape() {
        let hs = hosts(9);
        let arr = incast_wave(
            &hs[..8],
            hs[8],
            32,
            64_000,
            CcKind::Dcqcn,
            SimTime::from_us(5),
        );
        assert_eq!(arr.len(), 8 * 32);
        assert!(arr.iter().all(|a| a.msg.dst == hs[8]));
        assert!(arr.iter().all(|a| a.at == SimTime::from_us(5)));
    }

    #[test]
    #[should_panic(expected = "receiver cannot")]
    fn incast_self_rejected() {
        let hs = hosts(4);
        incast_wave(&hs, hs[0], 1, 1000, CcKind::Dcqcn, SimTime::ZERO);
    }

    #[test]
    fn random_incast_within_bounds() {
        let hs = hosts(24);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let arr = random_incast(&hs, 16, 8, CcKind::Dcqcn, SimTime::ZERO, &mut rng);
            assert!(!arr.is_empty());
            let recv = arr[0].msg.dst;
            let senders: std::collections::HashSet<_> = arr.iter().map(|a| a.src).collect();
            assert!(senders.len() >= 2 && senders.len() <= 16);
            assert!(!senders.contains(&recv));
            assert!(arr
                .iter()
                .all(|a| (10_000..=10_000_000).contains(&a.msg.bytes)));
        }
    }
}
