//! The parameter-server distributed-training model (§5.3.2).
//!
//! `n` workers train synchronously against one parameter server. Each
//! iteration, every worker pushes its gradients (one message of
//! `gradient_bytes`) to the PS; when all gradients are in, the PS applies
//! the update and broadcasts the fresh model to every worker; each worker
//! then computes for `compute_time` before pushing the next gradient.
//! Iterations per second is the training-speed metric of Fig. 10.
//!
//! Model sizes are configurable; the presets scale the real AlexNet /
//! ResNet-50 parameter counts down by 10x so that a packet-level simulation
//! covers multiple iterations in a manageable event budget — the
//! communication:computation ratio (which is what ECN tuning affects) is
//! preserved by scaling the compute time with the model.

use netsim::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use transport::{AppHook, CcKind, CompletedMsg, Message};

use crate::apptag::{self, APP_TRAINING};

const T_GRAD: u64 = 1;
const T_MODEL: u64 = 2;

#[inline]
fn tag(ty: u64, worker: u64) -> u64 {
    apptag::tag(APP_TRAINING, ty, worker)
}

/// Training-cluster parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Bytes pushed per worker per iteration (and broadcast back).
    pub gradient_bytes: u64,
    /// Per-iteration local computation time.
    pub compute_time: SimTime,
    /// Transport used (RDMA in the paper's GPU cluster).
    pub cc: CcKind,
}

impl TrainingConfig {
    /// AlexNet-like: big model, relatively short compute — communication
    /// bound (the case where the network matters most).
    pub fn alexnet() -> Self {
        TrainingConfig {
            gradient_bytes: 24_000_000, // ~240 MB scaled by 10
            compute_time: SimTime::from_ms(3),
            cc: CcKind::Dcqcn,
        }
    }

    /// ResNet-50-like: smaller model, longer compute.
    pub fn resnet50() -> Self {
        TrainingConfig {
            gradient_bytes: 10_000_000, // ~100 MB scaled by 10
            compute_time: SimTime::from_ms(8),
            cc: CcKind::Dcqcn,
        }
    }
}

/// The PS-training application; implements [`AppHook`].
pub struct TrainingCluster {
    cfg: TrainingConfig,
    workers: Vec<NodeId>,
    ps: NodeId,
    grads_this_iter: HashSet<u64>,
    /// Completed iterations with their completion times.
    pub iterations: Vec<SimTime>,
    /// Cutoff after which workers stop pushing new gradients (the current
    /// iteration still drains). Lets a soak phase end cleanly.
    deadline: Option<SimTime>,
}

impl TrainingCluster {
    /// `hosts[..n-1]` become workers, the last host the parameter server
    /// (the paper's 7-worker + 1-PS setup uses 8 hosts).
    pub fn new(hosts: &[NodeId], cfg: TrainingConfig) -> Self {
        assert!(hosts.len() >= 2, "need a worker and a PS");
        let (workers, ps) = hosts.split_at(hosts.len() - 1);
        TrainingCluster {
            cfg,
            workers: workers.to_vec(),
            ps: ps[0],
            grads_this_iter: HashSet::new(),
            iterations: Vec::new(),
            deadline: None,
        }
    }

    /// Stop starting new iterations at `at` (`None` trains indefinitely).
    pub fn set_deadline(&mut self, at: Option<SimTime>) {
        self.deadline = at;
    }

    /// Worker nodes.
    pub fn workers(&self) -> &[NodeId] {
        &self.workers
    }

    /// The parameter server.
    pub fn ps(&self) -> NodeId {
        self.ps
    }

    /// First gradient push from every worker (after one compute period).
    pub fn initial_arrivals(&self, start: SimTime) -> Vec<crate::gen::Arrival> {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, &w)| crate::gen::Arrival {
                src: w,
                at: start + self.cfg.compute_time,
                msg: Message::new(self.ps, self.cfg.gradient_bytes, self.cfg.cc)
                    .with_tag(tag(T_GRAD, i as u64)),
            })
            .collect()
    }

    /// Iterations per second over the window `[from, to)`.
    pub fn iterations_per_sec(&self, from: SimTime, to: SimTime) -> f64 {
        let n = self
            .iterations
            .iter()
            .filter(|&&t| t >= from && t < to)
            .count();
        n as f64 / (to - from).as_secs_f64()
    }
}

impl AppHook for TrainingCluster {
    fn on_message_received(&mut self, m: &CompletedMsg) -> Vec<(SimTime, Message)> {
        if apptag::app(m.tag) != APP_TRAINING {
            // Another app's (or untagged) traffic on shared host stacks.
            return vec![];
        }
        let ty = apptag::ty(m.tag);
        let idx = apptag::payload(m.tag);
        match ty {
            T_GRAD => {
                // At the PS. A stale cross-phase gradient aimed at a
                // different PS node is not ours.
                if m.dst != self.ps || idx as usize >= self.workers.len() {
                    return vec![];
                }
                self.grads_this_iter.insert(idx);
                if self.grads_this_iter.len() == self.workers.len() {
                    self.grads_this_iter.clear();
                    self.iterations.push(m.end);
                    if self.deadline.is_some_and(|d| m.end >= d) {
                        // Phase over: record the iteration, skip the
                        // broadcast that would start the next one.
                        return vec![];
                    }
                    // Broadcast the fresh model.
                    self.workers
                        .iter()
                        .enumerate()
                        .map(|(i, &w)| {
                            (
                                SimTime::ZERO,
                                Message::new(w, self.cfg.gradient_bytes, self.cfg.cc)
                                    .with_tag(tag(T_MODEL, i as u64)),
                            )
                        })
                        .collect()
                } else {
                    vec![]
                }
            }
            T_MODEL => {
                // At a worker: compute, then push the next gradient.
                if self.deadline.is_some_and(|d| m.end >= d) || idx as usize >= self.workers.len() {
                    return vec![];
                }
                vec![(
                    self.cfg.compute_time,
                    Message::new(self.ps, self.cfg.gradient_bytes, self.cfg.cc)
                        .with_tag(tag(T_GRAD, idx)),
                )]
            }
            // Foreign messages (probes, other apps) are not ours to react to.
            _ => vec![],
        }
    }
}

/// Shared handle used when wiring the cluster into the simulator.
pub type SharedTraining = Rc<RefCell<TrainingCluster>>;

#[cfg(test)]
mod tests {
    use super::*;
    use transport::{FctCollector, StackConfig};

    #[test]
    fn synchronous_iterations_progress() {
        let topo = TopologySpec::single_switch(8, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        let cfg = TrainingConfig {
            gradient_bytes: 1_000_000,
            compute_time: SimTime::from_ms(1),
            cc: CcKind::Dcqcn,
        };
        let cluster = Rc::new(RefCell::new(TrainingCluster::new(&hosts, cfg)));
        transport::set_app_hook(&mut sim, cluster.clone());
        let init = cluster.borrow().initial_arrivals(SimTime::ZERO);
        crate::gen::apply_arrivals(&mut sim, &init);
        sim.run_until(SimTime::from_ms(100));
        let c = cluster.borrow();
        assert!(
            c.iterations.len() >= 5,
            "expected several iterations, got {}",
            c.iterations.len()
        );
        // Iterations are strictly ordered in time.
        for w in c.iterations.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(c.iterations_per_sec(SimTime::ZERO, SimTime::from_ms(100)) > 50.0);
    }

    #[test]
    fn iteration_time_lower_bound() {
        // One iteration >= compute + 7 gradients serialized into one PS link
        // + model broadcast out of the same link.
        let topo = TopologySpec::single_switch(8, 25_000_000_000, SimTime::from_ns(500)).build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        let cfg = TrainingConfig {
            gradient_bytes: 2_000_000,
            compute_time: SimTime::from_ms(1),
            cc: CcKind::Dcqcn,
        };
        let cluster = Rc::new(RefCell::new(TrainingCluster::new(&hosts, cfg)));
        transport::set_app_hook(&mut sim, cluster.clone());
        let init = cluster.borrow().initial_arrivals(SimTime::ZERO);
        crate::gen::apply_arrivals(&mut sim, &init);
        sim.run_until(SimTime::from_ms(200));
        let c = cluster.borrow();
        assert!(c.iterations.len() >= 2);
        let gap = c.iterations[1] - c.iterations[0];
        // 7 workers x 2MB in + 7 x 2MB out over 25G ≈ 4.5ms+4.5ms, + 1ms
        // compute: at least ~7ms even with perfect pipelining.
        assert!(
            gap > SimTime::from_ms(6),
            "iteration gap implausibly small: {gap}"
        );
    }

    #[test]
    fn presets_are_ordered() {
        let a = TrainingConfig::alexnet();
        let r = TrainingConfig::resnet50();
        assert!(a.gradient_bytes > r.gradient_bytes);
        assert!(a.compute_time < r.compute_time);
    }
}
