//! Workload trace record/replay (§4.3: ACC's offline training uses
//! "realistic traffic traces collected from prevailing RDMA applications").
//!
//! A [`WorkloadTrace`] is a serializable list of flow arrivals. Generators
//! produce them, [`WorkloadTrace::save`]/[`WorkloadTrace::load`] persist them as JSON, and
//! [`crate::gen::apply_arrivals`] replays them into any simulation —
//! so a trace captured once (or exported from production telemetry in the
//! same shape) drives reproducible training and evaluation runs.

use crate::gen::Arrival;
use netsim::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;
use transport::{CcKind, Message};

/// Serializable form of one arrival.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct TraceEntry {
    /// Sending host (topology index).
    pub src: u32,
    /// Receiving host (topology index).
    pub dst: u32,
    /// Start time in picoseconds (full simulator precision).
    pub at_ps: u64,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Transport.
    pub cc: CcKind,
    /// Application tag.
    pub tag: u64,
}

/// A recorded workload: metadata plus the arrival list.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct WorkloadTrace {
    /// Free-form description (generator, parameters, date).
    pub description: String,
    /// The arrivals, in any order (replay sorts by time implicitly via the
    /// event queue).
    pub entries: Vec<TraceEntry>,
}

impl WorkloadTrace {
    /// Capture a generated arrival list.
    pub fn from_arrivals(description: impl Into<String>, arrivals: &[Arrival]) -> Self {
        WorkloadTrace {
            description: description.into(),
            entries: arrivals
                .iter()
                .map(|a| TraceEntry {
                    src: a.src.0,
                    dst: a.msg.dst.0,
                    at_ps: a.at.as_ps(),
                    bytes: a.msg.bytes,
                    cc: a.msg.cc,
                    tag: a.msg.tag,
                })
                .collect(),
        }
    }

    /// Reconstruct the arrival list for replay.
    pub fn to_arrivals(&self) -> Vec<Arrival> {
        self.entries
            .iter()
            .map(|e| Arrival {
                src: NodeId(e.src),
                at: SimTime::from_ps(e.at_ps),
                msg: Message {
                    dst: NodeId(e.dst),
                    bytes: e.bytes,
                    cc: e.cc,
                    tag: e.tag,
                },
            })
            .collect()
    }

    /// Total bytes offered by the trace.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Time span covered (first to last arrival).
    pub fn span(&self) -> SimTime {
        let lo = self.entries.iter().map(|e| e.at_ps).min().unwrap_or(0);
        let hi = self.entries.iter().map(|e| e.at_ps).max().unwrap_or(0);
        SimTime::from_ps(hi - lo)
    }

    /// Persist as pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(
            path,
            serde_json::to_string_pretty(self).expect("trace serializes"),
        )
    }

    /// Load from JSON.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{incast_wave, PoissonGen};
    use crate::SizeDist;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn round_trip_preserves_arrivals() {
        let hs = hosts(6);
        let arr = incast_wave(
            &hs[..4],
            hs[5],
            3,
            50_000,
            CcKind::Dcqcn,
            SimTime::from_us(7),
        );
        let trace = WorkloadTrace::from_arrivals("test incast", &arr);
        assert_eq!(trace.entries.len(), 12);
        assert_eq!(trace.total_bytes(), 12 * 50_000);
        let back = trace.to_arrivals();
        assert_eq!(back.len(), arr.len());
        for (a, b) in arr.iter().zip(&back) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.at, b.at);
            assert_eq!(a.msg.dst, b.msg.dst);
            assert_eq!(a.msg.bytes, b.msg.bytes);
        }
    }

    #[test]
    fn file_round_trip() {
        let hs = hosts(8);
        let g = PoissonGen::new(SizeDist::data_mining(), 0.4, CcKind::Dcqcn, 3);
        let arr = g.generate(&hs, 25_000_000_000, SimTime::ZERO, SimTime::from_ms(5));
        let trace = WorkloadTrace::from_arrivals("poisson dm 40%", &arr);
        let path = std::env::temp_dir().join("acc_trace_test.json");
        trace.save(&path).unwrap();
        let loaded = WorkloadTrace::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.description, "poisson dm 40%");
        assert_eq!(loaded.entries, trace.entries);
        assert!(loaded.span() > SimTime::ZERO);
    }

    #[test]
    fn replayed_trace_drives_a_simulation_identically() {
        use transport::{FctCollector, StackConfig};
        let topo_hosts: Vec<NodeId> =
            TopologySpec::single_switch(8, 25_000_000_000, SimTime::from_ns(500))
                .build()
                .hosts()
                .to_vec();
        let run = |arr: &[Arrival]| -> usize {
            let topo =
                TopologySpec::single_switch(8, 25_000_000_000, SimTime::from_ns(500)).build();
            let mut sim = Simulator::new(topo, SimConfig::default());
            let fct = FctCollector::new_shared();
            let _hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
            crate::gen::apply_arrivals(&mut sim, arr);
            sim.run_until(SimTime::from_ms(30));
            let n = fct.borrow().completed_count();
            n
        };
        let g = PoissonGen::new(SizeDist::web_search(), 0.3, CcKind::Dcqcn, 5);
        let arr = g.generate(
            &topo_hosts,
            25_000_000_000,
            SimTime::ZERO,
            SimTime::from_ms(3),
        );
        let trace = WorkloadTrace::from_arrivals("x", &arr);
        let replayed = trace.to_arrivals();
        assert!(!replayed.is_empty());
        assert_eq!(run(&arr), run(&replayed));
    }
}
