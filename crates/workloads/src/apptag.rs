//! The message-tag namespace shared by the closed-loop application models.
//!
//! A transport [`transport::Message`] carries one opaque `u64` tag. The
//! storage and training clusters both encode a message *type* in its top
//! bits, and a soak run rotates those apps through the **same** host
//! stacks — so without a discriminator, a stale in-flight storage response
//! arriving after a phase switch would be decoded as a training message
//! (or vice versa). Bits 60..64 therefore carry an application id; every
//! [`transport::AppHook`] implementation filters on its own id first and
//! ignores everything else.
//!
//! Layout: `| app: 4 bits | type: 4 bits | payload: 56 bits |`.

/// Bit position of the application-id field.
pub const APP_SHIFT: u64 = 60;
/// Bit position of the message-type field.
pub const TY_SHIFT: u64 = 56;

/// Application id of the distributed-storage cluster.
pub const APP_STORAGE: u64 = 1;
/// Application id of the parameter-server training cluster.
pub const APP_TRAINING: u64 = 2;

/// Compose a tag. `ty` must fit in 4 bits, `payload` in 56.
#[inline]
pub fn tag(app: u64, ty: u64, payload: u64) -> u64 {
    debug_assert!(app < 16 && ty < 16 && payload < (1 << TY_SHIFT));
    (app << APP_SHIFT) | (ty << TY_SHIFT) | payload
}

/// The application id of a tag.
#[inline]
pub fn app(t: u64) -> u64 {
    t >> APP_SHIFT
}

/// The message type of a tag.
#[inline]
pub fn ty(t: u64) -> u64 {
    (t >> TY_SHIFT) & 0xF
}

/// The payload (IO id, worker index...) of a tag.
#[inline]
pub fn payload(t: u64) -> u64 {
    t & ((1 << TY_SHIFT) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_round_trip_and_do_not_alias() {
        let t = tag(APP_STORAGE, 6, (1 << 56) - 1);
        assert_eq!(app(t), APP_STORAGE);
        assert_eq!(ty(t), 6);
        assert_eq!(payload(t), (1 << 56) - 1);
        // The same type under a different app id is a different tag.
        assert_ne!(tag(APP_STORAGE, 1, 9), tag(APP_TRAINING, 1, 9));
        // Untagged (0) traffic belongs to no app.
        assert_eq!(app(0), 0);
    }
}
