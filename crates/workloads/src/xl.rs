//! XL-scale workload generation for the flow-level backend: the
//! `paper_xl_flows` scenario (websearch + storage-message mix over the
//! 1024-host Clos) at 100–1000× the flow counts the packet engine can
//! afford, plus the `Arrival` → [`FlowSpec`] bridge that lets any existing
//! generator drive `netsim::flowsim::FlowSim`.

use crate::dists::SizeDist;
use crate::gen::{Arrival, PoissonGen};
use netsim::flowsim::FlowSpec;
use netsim::prelude::*;
use transport::CcKind;

/// Convert scheduled packet-engine arrivals into flow-level specs, keeping
/// arrival order (and therefore flow-id assignment) identical.
pub fn to_flow_specs(arrivals: &[Arrival]) -> Vec<FlowSpec> {
    arrivals
        .iter()
        .map(|a| FlowSpec {
            src: a.src,
            dst: a.msg.dst,
            bytes: a.msg.bytes,
            prio: a.msg.cc.prio(),
            tag: a.msg.tag,
            start: a.at,
        })
        .collect()
}

/// Parameters of the `paper_xl_flows` scenario.
#[derive(Clone, Copy, Debug)]
pub struct XlFlowsSpec {
    /// Websearch (DCTCP-paper distribution) offered load as a fraction of
    /// host line rate.
    pub websearch_load: f64,
    /// Storage message-mix offered load overlaid on the same hosts.
    pub storage_load: f64,
    /// Arrival-generation window; flows arriving inside it may finish
    /// after it (run the sim with a longer horizon).
    pub duration: SimTime,
    /// RNG seed for both generators (storage uses `seed + 1`).
    pub seed: u64,
}

impl XlFlowsSpec {
    /// The full-size scenario: ~0.5M flows over 100 ms on 1024 hosts.
    pub fn full(seed: u64) -> XlFlowsSpec {
        XlFlowsSpec {
            websearch_load: 0.6,
            storage_load: 0.2,
            duration: SimTime::from_ms(100),
            seed,
        }
    }

    /// CI-sized variant (~50k flows over 25 ms) — still ≥ 100× the packet
    /// perf suite's websearch row.
    pub fn quick(seed: u64) -> XlFlowsSpec {
        XlFlowsSpec {
            websearch_load: 0.6,
            storage_load: 0.2,
            duration: SimTime::from_ms(25),
            seed,
        }
    }

    /// Generate the arrival list over `hosts` at `host_bps`: a websearch
    /// Poisson process plus a storage message-mix overlay, merged in time
    /// order (stable on ties, so the mix is deterministic).
    pub fn generate(&self, hosts: &[NodeId], host_bps: u64) -> Vec<Arrival> {
        let ws = PoissonGen::new(
            SizeDist::web_search(),
            self.websearch_load,
            CcKind::Dcqcn,
            self.seed,
        )
        .generate(hosts, host_bps, SimTime::ZERO, self.duration);
        let st = PoissonGen::new(
            SizeDist::message_mix(),
            self.storage_load,
            CcKind::Dcqcn,
            self.seed + 1,
        )
        .generate(hosts, host_bps, SimTime::ZERO, self.duration);
        let mut all = ws;
        all.extend(st);
        all.sort_by_key(|a| a.at);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_is_xl() {
        let topo = TopologySpec::paper_xl_clos().build();
        let spec = XlFlowsSpec::quick(7);
        let arrivals = spec.generate(topo.hosts(), topo.host_rate_bps(topo.hosts()[0]));
        // ≥ 100× the packet perf suite's websearch row (~360 flows).
        assert!(
            arrivals.len() >= 36_000,
            "xl-flows quick must be ≥100× the packet websearch row, got {}",
            arrivals.len()
        );
        // Deterministic: same seed, same list.
        let again = spec.generate(topo.hosts(), topo.host_rate_bps(topo.hosts()[0]));
        assert_eq!(arrivals.len(), again.len());
        assert!(arrivals
            .iter()
            .zip(&again)
            .all(|(a, b)| a.at == b.at && a.src == b.src && a.msg.bytes == b.msg.bytes));
    }

    #[test]
    fn flow_spec_bridge_preserves_order_and_fields() {
        let topo = TopologySpec::single_switch(4, 25_000_000_000, SimTime::from_ns(500)).build();
        let gen = PoissonGen::new(SizeDist::web_search(), 0.3, CcKind::Dcqcn, 3);
        let arrivals = gen.generate(
            topo.hosts(),
            25_000_000_000,
            SimTime::ZERO,
            SimTime::from_ms(5),
        );
        let specs = to_flow_specs(&arrivals);
        assert_eq!(specs.len(), arrivals.len());
        for (a, s) in arrivals.iter().zip(&specs) {
            assert_eq!(s.src, a.src);
            assert_eq!(s.dst, a.msg.dst);
            assert_eq!(s.bytes, a.msg.bytes);
            assert_eq!(s.start, a.at);
            assert_eq!(s.prio, a.msg.cc.prio());
        }
    }
}
