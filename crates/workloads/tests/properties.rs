//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use workloads::SizeDist;

/// Strategy producing a valid random CDF (monotone sizes and masses).
fn arb_cdf() -> impl Strategy<Value = Vec<(u64, f64)>> {
    (2usize..8).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..1_000_000, n),
            prop::collection::vec(0.01f64..1.0, n - 1),
        )
            .prop_map(|(mut sizes, weights)| {
                sizes.sort_unstable();
                sizes.dedup();
                while sizes.len() < 2 {
                    sizes.push(sizes.last().unwrap() + 1);
                }
                let total: f64 = weights.iter().take(sizes.len() - 1).sum();
                let mut points = vec![(sizes[0], 0.0)];
                let mut acc = 0.0;
                for (i, s) in sizes.iter().enumerate().skip(1) {
                    acc += weights[(i - 1) % weights.len()] / total;
                    points.push((*s, acc.min(1.0)));
                }
                points.last_mut().unwrap().1 = 1.0;
                points
            })
    })
}

proptest! {
    /// Samples always land inside the distribution's support.
    #[test]
    fn samples_within_support(points in arb_cdf(), seed in any::<u64>()) {
        let dist = SizeDist::new("random", points.clone());
        let lo = points.first().unwrap().0;
        let hi = points.last().unwrap().0;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = dist.sample(&mut rng);
            prop_assert!(s >= lo.min(1) && s <= hi, "sample {s} outside [{lo}, {hi}]");
        }
    }

    /// The CDF is monotone and hits 0/1 at the support edges.
    #[test]
    fn cdf_is_monotone(points in arb_cdf(), x1 in 0u64..2_000_000, x2 in 0u64..2_000_000) {
        let dist = SizeDist::new("random", points.clone());
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(dist.cdf(lo) <= dist.cdf(hi) + 1e-12);
        prop_assert_eq!(dist.cdf(0), 0.0);
        prop_assert_eq!(dist.cdf(u64::MAX), 1.0);
    }

    /// The analytic mean is inside the support and consistent with sampling.
    #[test]
    fn mean_is_consistent(points in arb_cdf()) {
        let dist = SizeDist::new("random", points.clone());
        let lo = points.first().unwrap().0 as f64;
        let hi = points.last().unwrap().0 as f64;
        let m = dist.mean_bytes();
        prop_assert!(m >= lo * 0.99 && m <= hi * 1.01, "mean {m} outside [{lo}, {hi}]");
    }

    /// Incast generation produces exactly senders x flows arrivals, all to
    /// the receiver.
    #[test]
    fn incast_counts(n_senders in 1usize..20, flows in 1usize..20, bytes in 1u64..1_000_000) {
        use netsim::prelude::*;
        let senders: Vec<NodeId> = (0..n_senders as u32).map(NodeId).collect();
        let receiver = NodeId(1000);
        let arr = workloads::gen::incast_wave(
            &senders, receiver, flows, bytes, transport::CcKind::Dcqcn, SimTime::ZERO,
        );
        prop_assert_eq!(arr.len(), n_senders * flows);
        prop_assert!(arr.iter().all(|a| a.msg.dst == receiver && a.msg.bytes == bytes));
    }

    /// Poisson load scales roughly linearly with the requested load.
    #[test]
    fn poisson_load_scales(seed in any::<u64>()) {
        use netsim::prelude::*;
        use transport::CcKind;
        use workloads::gen::PoissonGen;
        let hosts: Vec<NodeId> = (0..8).map(NodeId).collect();
        let dur = SimTime::from_ms(100);
        let total = |load: f64| -> f64 {
            let g = PoissonGen::new(SizeDist::web_search(), load, CcKind::Dcqcn, seed);
            g.generate(&hosts, 25_000_000_000, SimTime::ZERO, dur)
                .iter()
                .map(|a| a.msg.bytes as f64)
                .sum()
        };
        let b30 = total(0.3);
        let b90 = total(0.9);
        let ratio = b90 / b30.max(1.0);
        prop_assert!((1.8..5.0).contains(&ratio), "offered bytes ratio {ratio}");
    }
}
