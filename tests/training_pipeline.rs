//! Integration tests for the offline-train → export → redeploy pipeline and
//! the multi-agent experience exchange (§3.4, §4.3).

use acc::core::{controller, trainer, ActionSpace};
use acc::netsim::prelude::*;
use acc::transport::{self, CcKind, FctCollector, StackConfig};
use acc::workloads::gen;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn acc_cfg() -> controller::AccConfig {
    let mut cfg = controller::AccConfig::default();
    cfg.ddqn.min_replay = 32;
    cfg.ddqn.batch_size = 16;
    cfg
}

fn drive_random_incast(sim: &mut Simulator, hosts: &[NodeId], ms: u64, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for seg in 0..(ms / 2) {
        let arr = gen::random_incast(
            hosts,
            8,
            8,
            CcKind::Dcqcn,
            SimTime::from_ms(seg * 2),
            &mut rng,
        );
        gen::apply_arrivals(sim, &arr);
    }
    sim.run_until(SimTime::from_ms(ms));
}

#[test]
fn offline_training_produces_redeployable_model() {
    // Phase 1: shared-agent training on the testbed Clos.
    let topo = TopologySpec::paper_testbed().build();
    let simcfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, simcfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
    let space = ActionSpace::templates();
    let agent = trainer::install_shared_training(&mut sim, &acc_cfg(), &space);
    drive_random_incast(&mut sim, &hosts, 10, 1);
    assert!(
        agent.borrow().train_steps() > 0,
        "training must have happened"
    );

    // Phase 2: export + redeploy frozen on a fresh simulation.
    let sw0 = sim.core().topo.switches()[0];
    let model = trainer::extract_model(&mut sim, sw0);
    let json = serde_json::to_string(&model).unwrap();
    let reloaded: rl::Mlp = serde_json::from_str(&json).unwrap();

    let topo2 = TopologySpec::paper_testbed().build();
    let simcfg2 = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim2 = Simulator::new(topo2, simcfg2);
    let fct2 = FctCollector::new_shared();
    let hosts2 = transport::install_stacks(&mut sim2, StackConfig::default(), &fct2);
    let frozen = trainer::frozen_config(&acc_cfg());
    controller::install_acc_with_model(&mut sim2, &frozen, &space, &reloaded);
    drive_random_incast(&mut sim2, &hosts2, 6, 2);
    // Frozen controllers must not have trained.
    for sw in sim2.core().topo.switches().to_vec() {
        sim2.with_controller(sw, |c, _| {
            let acc = c
                .as_any_mut()
                .downcast_mut::<controller::AccController>()
                .unwrap();
            assert_eq!(acc.stats.train_steps, 0);
            assert!(acc.stats.inferences > 0);
        });
    }
    assert!(fct2.borrow().completed_count() > 0);
}

#[test]
fn global_replay_exchanges_experience_between_switches() {
    let topo = TopologySpec::paper_testbed().build();
    let simcfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, simcfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
    let mut cfg = acc_cfg();
    cfg.exchange_every_ticks = 20;
    cfg.exchange_batch = 16;
    let space = ActionSpace::templates();
    let global = controller::install_acc(&mut sim, &cfg, &space);
    drive_random_incast(&mut sim, &hosts, 8, 3);
    assert!(
        !global.borrow().is_empty(),
        "switch experience must reach the global memory"
    );
}

#[test]
fn online_fine_tuning_keeps_learning_after_pretrain() {
    let space = ActionSpace::templates();
    let base = acc_cfg();
    let model = {
        let ctl = controller::AccController::new(base.clone(), space.clone());
        ctl.export_model()
    };
    let topo = TopologySpec::single_switch(6, 25_000_000_000, SimTime::from_ns(500)).build();
    let simcfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, simcfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
    let online = trainer::online_config(&base, 0.1, 200.0);
    controller::install_acc_with_model(&mut sim, &online, &space, &model);
    drive_random_incast(&mut sim, &hosts, 10, 4);
    let sw = sim.core().topo.switches()[0];
    sim.with_controller(sw, |c, _| {
        let acc = c
            .as_any_mut()
            .downcast_mut::<controller::AccController>()
            .unwrap();
        assert!(acc.stats.train_steps > 0, "online training must continue");
    });
}
