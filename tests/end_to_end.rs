//! Cross-crate integration tests: fabric + transports + control policies
//! working together end to end.

use acc::core::{controller, static_ecn, ActionSpace, StaticEcnPolicy};
use acc::netsim::ids::PRIO_RDMA;
use acc::netsim::prelude::*;
use acc::transport::{self, CcKind, FctCollector, Message, StackConfig};
use acc::workloads::gen;

fn clos_sim(control: Option<SimTime>) -> (Simulator, Vec<NodeId>, transport::SharedFct) {
    let topo = TopologySpec::paper_testbed().build();
    let mut cfg = SimConfig::default();
    cfg.control_interval = control;
    let mut sim = Simulator::new(topo, cfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
    (sim, hosts, fct)
}

#[test]
fn cross_rack_transfer_achieves_line_rate() {
    let (mut sim, hosts, fct) = clos_sim(None);
    // Host 0 (rack 0) to the last host (rack 3): two switch hops.
    let dst = hosts[hosts.len() - 1];
    transport::schedule_message(
        &mut sim,
        hosts[0],
        SimTime::ZERO,
        Message::new(dst, 20_000_000, CcKind::Dcqcn),
    );
    sim.run_until(SimTime::from_ms(40));
    let f = fct.borrow();
    assert_eq!(f.completed_count(), 1);
    let fct_s = f.completed().next().unwrap().fct().unwrap().as_secs_f64();
    let goodput = 20_000_000.0 * 8.0 / fct_s;
    assert!(
        goodput > 0.9 * 25e9,
        "cross-rack goodput {:.2} Gbps",
        goodput / 1e9
    );
    assert_eq!(sim.core().total_drops, 0);
}

#[test]
fn rdma_class_is_lossless_under_heavy_incast() {
    let (mut sim, hosts, fct) = clos_sim(Some(SimTime::from_us(50)));
    static_ecn::install_static(&mut sim, StaticEcnPolicy::Secn1);
    // 16-to-1 incast across racks, 8 flows each.
    let receiver = hosts[0];
    let arr = gen::incast_wave(
        &hosts[1..17],
        receiver,
        8,
        500_000,
        CcKind::Dcqcn,
        SimTime::ZERO,
    );
    gen::apply_arrivals(&mut sim, &arr);
    sim.run_until(SimTime::from_ms(80));
    assert_eq!(sim.core().lossless_drops, 0, "PFC must protect RDMA");
    assert_eq!(
        fct.borrow().completed_count(),
        16 * 8,
        "all incast flows must finish"
    );
    // Every stack saw in-order delivery.
    for &h in &hosts {
        sim.with_driver(h, |d, _| {
            let st = d
                .as_any_mut()
                .downcast_mut::<transport::HostStack>()
                .unwrap();
            assert_eq!(st.rdma_sequence_errors, 0);
        });
    }
}

#[test]
fn dcqcn_flows_share_bottleneck_fairly() {
    let (mut sim, hosts, fct) = clos_sim(Some(SimTime::from_us(50)));
    static_ecn::install_static(&mut sim, StaticEcnPolicy::Secn1);
    // 4 same-rack senders, one receiver, one big flow each.
    let receiver = hosts[5]; // same leaf as hosts[0..5]
    for &h in hosts.iter().take(4) {
        transport::schedule_message(
            &mut sim,
            h,
            SimTime::ZERO,
            Message::new(receiver, 5_000_000, CcKind::Dcqcn),
        );
    }
    sim.run_until(SimTime::from_ms(60));
    let f = fct.borrow();
    assert_eq!(f.completed_count(), 4);
    let fcts: Vec<f64> = f
        .completed()
        .map(|r| r.fct().unwrap().as_secs_f64())
        .collect();
    let min = fcts.iter().cloned().fold(f64::MAX, f64::min);
    let max = fcts.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        max / min < 1.8,
        "flows should finish within ~2x of each other: {fcts:?}"
    );
}

#[test]
fn acc_controller_improves_over_mismatched_static() {
    // Sustained heavy incast against a badly mismatched legacy setting
    // (single 10 MB threshold — marking effectively disabled, the queue
    // rides the PFC ceiling). ACC learning online from scratch must end up
    // with a visibly shorter time-average queue at the hot port while
    // keeping comparable goodput.
    fn avg_queue(with_acc: bool) -> (f64, u64) {
        let topo = TopologySpec::single_switch(9, 25_000_000_000, SimTime::from_ns(500)).build();
        let cfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
        let mut sim = Simulator::new(topo, cfg);
        let fct = FctCollector::new_shared();
        let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
        if with_acc {
            let mut acc = controller::AccConfig::default();
            acc.ddqn.min_replay = 32;
            controller::install_acc(&mut sim, &acc, &ActionSpace::templates());
        } else {
            static_ecn::install_static(
                &mut sim,
                StaticEcnPolicy::Fixed(acc::netsim::queues::EcnConfig::new(
                    10 * 1024 * 1024,
                    10 * 1024 * 1024,
                    1.0,
                )),
            );
        }
        let arr = gen::incast_wave(
            &hosts[..8],
            hosts[8],
            8,
            1_000_000_000,
            CcKind::Dcqcn,
            SimTime::ZERO,
        );
        gen::apply_arrivals(&mut sim, &arr);
        let horizon = SimTime::from_ms(40);
        sim.run_until(horizon);
        let sw = sim.core().topo.switches()[0];
        let t = sim.core_mut().synced_queue_telem(sw, PortId(8), PRIO_RDMA);
        let avg = t.qlen_integral_byte_ps as f64 / horizon.as_ps() as f64;
        (avg, t.tx_bytes)
    }
    let (static_q, static_tx) = avg_queue(false);
    let (acc_q, acc_tx) = avg_queue(true);
    assert!(
        acc_q < 0.8 * static_q,
        "ACC should keep a clearly shorter queue: acc={acc_q:.0}B static={static_q:.0}B"
    );
    assert!(
        acc_tx as f64 > 0.85 * static_tx as f64,
        "the shorter queue must not come from idling: acc={acc_tx}B static={static_tx}B"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    fn run() -> (usize, u64, Vec<(u64, u64)>) {
        let (mut sim, hosts, fct) = clos_sim(Some(SimTime::from_us(50)));
        let mut acc = controller::AccConfig::default();
        acc.ddqn.min_replay = 32;
        controller::install_acc(&mut sim, &acc, &ActionSpace::templates());
        let g = acc::workloads::gen::PoissonGen::new(
            acc::workloads::SizeDist::web_search(),
            0.5,
            CcKind::Dcqcn,
            99,
        );
        let arr = g.generate(&hosts, 25_000_000_000, SimTime::ZERO, SimTime::from_ms(5));
        gen::apply_arrivals(&mut sim, &arr);
        sim.run_until(SimTime::from_ms(10));
        let f = fct.borrow();
        let fcts = f
            .completed()
            .map(|r| (r.flow.0, r.fct().unwrap().as_ps()))
            .collect();
        (f.completed_count(), sim.core().events_processed, fcts)
    }
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "event counts must match exactly");
    assert_eq!(a.2, b.2, "every FCT must match exactly");
}

#[test]
fn mixed_tcp_and_rdma_survive_on_shared_fabric() {
    let (mut sim, hosts, fct) = clos_sim(Some(SimTime::from_us(50)));
    static_ecn::install_static(&mut sim, StaticEcnPolicy::Secn1);
    let dst = hosts[12];
    for (i, &h) in hosts[..6].iter().enumerate() {
        let cc = match i % 3 {
            0 => CcKind::Dcqcn,
            1 => CcKind::Dctcp,
            _ => CcKind::Reno,
        };
        transport::schedule_message(
            &mut sim,
            h,
            SimTime::from_us(i as u64 * 10),
            Message::new(dst, 2_000_000, cc),
        );
    }
    sim.run_until(SimTime::from_ms(200));
    assert_eq!(fct.borrow().completed_count(), 6);
}
