//! Deep-dive with the structured tracer (the simulator's "tcpdump"):
//! watch a single hot queue during an incast burst under ACC — every
//! enqueue/dequeue, every CE mark, every PFC pause — and print a compact
//! timeline of how the controller's threshold interacts with the queue.
//!
//! Run with:
//! ```sh
//! cargo run --release --example deep_dive_trace
//! ```

use acc::core::{controller, ActionSpace};
use acc::netsim::ids::PRIO_RDMA;
use acc::netsim::prelude::*;
use acc::transport::{self, CcKind, FctCollector, StackConfig};
use acc::workloads::gen;

fn main() {
    // 16 hosts on a 25G switch; ACC learns online.
    let topo = TopologySpec::single_switch(16, 25_000_000_000, SimTime::from_ns(500)).build();
    let cfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, cfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
    let mut acc_cfg = controller::AccConfig::default();
    acc_cfg.ddqn.min_replay = 32;
    controller::install_acc(&mut sim, &acc_cfg, &ActionSpace::templates());

    // Watch the receiver's egress queue only.
    let sw = sim.core().topo.switches()[0];
    let hot_port = PortId(15);
    sim.set_tracer(Tracer::new(
        TraceFilter::queue(sw, hot_port, PRIO_RDMA),
        200_000,
    ));

    // Background flows plus a 12:1 burst in the middle.
    let receiver = hosts[15];
    gen::apply_arrivals(
        &mut sim,
        &gen::incast_wave(
            &hosts[..3],
            receiver,
            2,
            2_000_000,
            CcKind::Dcqcn,
            SimTime::from_ms(1),
        ),
    );
    gen::apply_arrivals(
        &mut sim,
        &gen::incast_wave(
            &hosts[..12],
            receiver,
            6,
            400_000,
            CcKind::Dcqcn,
            SimTime::from_ms(4),
        ),
    );
    sim.run_until(SimTime::from_ms(12));

    // Summarise the trace into 500 us buckets.
    let events = sim.tracer_mut().unwrap().take();
    println!(
        "captured {} events on the hot queue ({} total matched)\n",
        events.len(),
        events.len()
    );
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "t(us)", "enq", "deq", "marks", "pauses", "max q(KB)"
    );
    let bucket = SimTime::from_us(500);
    let mut idx = 0u64;
    let mut stats = (0u64, 0u64, 0u64, 0u64, 0u64); // enq, deq, mark, pause, maxq
    for ev in &events {
        let b = ev.at.as_ps() / bucket.as_ps();
        if b != idx {
            if stats != (0, 0, 0, 0, 0) {
                println!(
                    "{:>10} {:>8} {:>8} {:>8} {:>8} {:>12.1}",
                    idx * 500,
                    stats.0,
                    stats.1,
                    stats.2,
                    stats.3,
                    stats.4 as f64 / 1024.0
                );
            }
            idx = b;
            stats = (0, 0, 0, 0, 0);
        }
        match ev.kind {
            TraceKind::Enqueue => stats.0 += 1,
            TraceKind::Dequeue => stats.1 += 1,
            TraceKind::CeMark => stats.2 += 1,
            TraceKind::PfcPause => stats.3 += 1,
            _ => {}
        }
        stats.4 = stats.4.max(ev.qlen_bytes);
    }
    println!(
        "\nflows completed: {} / {}",
        fct.borrow().completed_count(),
        fct.borrow().total_count()
    );
    println!("write the full trace with Tracer::to_jsonl() for offline analysis.");
}
