//! H-ACC (§6 extension): local per-switch inference with centralized
//! training and periodic model publication — compared against plain D-ACC
//! and a static setting on the same heterogeneous traffic.
//!
//! Run with:
//! ```sh
//! cargo run --release --example hybrid_controller
//! ```

use acc::core::{controller, hybrid, static_ecn, ActionSpace, StaticEcnPolicy};
use acc::netsim::ids::PRIO_RDMA;
use acc::netsim::prelude::*;
use acc::transport::{self, CcKind, FctCollector, StackConfig};
use acc::workloads::gen;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run(which: &str) -> (f64, f64) {
    let topo = TopologySpec::paper_testbed().build();
    let cfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, cfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);

    let space = ActionSpace::templates();
    match which {
        "SECN1" => static_ecn::install_static(&mut sim, StaticEcnPolicy::Secn1),
        "D-ACC" => {
            let mut acc = controller::AccConfig::default();
            acc.ddqn.min_replay = 32;
            controller::install_acc(&mut sim, &acc, &space);
        }
        "H-ACC" => {
            let mut acc = controller::AccConfig::default();
            acc.ddqn.min_replay = 32;
            // Models published centrally, pushed every 20 ticks (~1 ms).
            hybrid::install_hybrid(&mut sim, &acc, &space, 20);
        }
        _ => unreachable!(),
    }

    // Random incast bursts across the fabric.
    let mut rng = SmallRng::seed_from_u64(8);
    for seg in 0..30u64 {
        let arr = gen::random_incast(
            &hosts,
            12,
            8,
            CcKind::Dcqcn,
            SimTime::from_ms(seg * 2),
            &mut rng,
        );
        gen::apply_arrivals(&mut sim, &arr);
    }
    let horizon = SimTime::from_ms(70);
    sim.run_until(horizon);

    let stats = fct.borrow().stats(|_| true);
    // Fabric-wide average RDMA queue depth across all leaf host ports.
    let mut total_avg = 0.0;
    let mut n = 0;
    for sw in sim.core().topo.switches().to_vec() {
        let ports = sim.core().topo.node(sw).ports.len();
        for p in 0..ports {
            let now = sim.now();
            let t = sim
                .core_mut()
                .synced_queue_telem(sw, PortId(p as u16), PRIO_RDMA);
            total_avg += t.qlen_integral_byte_ps as f64 / now.as_ps() as f64;
            n += 1;
        }
    }
    (stats.avg_us, total_avg / n as f64 / 1024.0)
}

fn main() {
    println!("H-ACC vs D-ACC vs static on random incast bursts (24-host Clos)\n");
    println!(
        "{:<8} {:>14} {:>22}",
        "policy", "avg FCT(us)", "fabric avg queue(KB)"
    );
    for which in ["SECN1", "D-ACC", "H-ACC"] {
        let (fct, q) = run(which);
        println!("{which:<8} {fct:>14.1} {q:>22.2}");
    }
    println!("\nH-ACC = per-switch inference + centralized training (§6 sketch).");
}
