//! Observation 1 of the paper, live: different incast workloads want
//! different static ECN thresholds — and ACC finds a good operating point
//! for both without being told which workload is running.
//!
//! Sweeps the single-threshold ladder `K = E(n)` for two incast shapes
//! (8 senders x 32 flows, and 15 senders x 8 flows), printing receiver
//! goodput and time-average queue depth for each K, then runs ACC on the
//! same two workloads.
//!
//! Run with:
//! ```sh
//! cargo run --release --example incast_tuning
//! ```

use acc::core::static_ecn::install_static;
use acc::core::{controller, reward::e_n, ActionSpace, StaticEcnPolicy};
use acc::netsim::ids::PRIO_RDMA;
use acc::netsim::prelude::*;
use acc::netsim::queues::EcnConfig;
use acc::transport::{self, CcKind, FctCollector, StackConfig};
use acc::workloads::gen;

struct Outcome {
    goodput_gbps: f64,
    avg_queue_kb: f64,
}

/// Run one incast scenario (senders x flows, 1 MB per flow) under a policy.
fn run(n_senders: usize, flows: usize, policy: Option<EcnConfig>, acc: bool) -> Outcome {
    let topo = TopologySpec::single_switch(16, 25_000_000_000, SimTime::from_ns(500)).build();
    let cfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, cfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);
    let receiver = hosts[15];

    if acc {
        let mut acc_cfg = controller::AccConfig::default();
        acc_cfg.ddqn.min_replay = 32;
        controller::install_acc(&mut sim, &acc_cfg, &ActionSpace::templates());
    } else if let Some(e) = policy {
        install_static(&mut sim, StaticEcnPolicy::Fixed(e));
    }

    // Waves of incast, enough to measure steady behaviour.
    let per_flow = 1_000_000u64;
    for wave in 0..10 {
        let arrivals = gen::incast_wave(
            &hosts[..n_senders],
            receiver,
            flows,
            per_flow,
            CcKind::Dcqcn,
            SimTime::from_ms(wave * 14),
        );
        gen::apply_arrivals(&mut sim, &arrivals);
    }
    let horizon = SimTime::from_ms(145);
    sim.run_until(horizon);

    let delivered: u64 = fct.borrow().completed().map(|r| r.bytes).sum();
    let goodput_gbps = delivered as f64 * 8.0 / horizon.as_secs_f64() / 1e9;
    let sw = sim.core().topo.switches()[0];
    let t = sim.core_mut().synced_queue_telem(sw, PortId(15), PRIO_RDMA);
    let avg_queue_kb = t.qlen_integral_byte_ps as f64 / horizon.as_ps() as f64 / 1024.0;
    Outcome {
        goodput_gbps,
        avg_queue_kb,
    }
}

fn sweep(name: &str, senders: usize, flows: usize) {
    println!("--- {name}: {senders} senders x {flows} flows, 1MB each ---");
    println!(
        "{:<12} {:>16} {:>16}",
        "K", "goodput(Gbps)", "avg queue(KB)"
    );
    for n in 0..10 {
        let k = e_n(n);
        let o = run(senders, flows, Some(EcnConfig::new(k, k, 1.0)), false);
        println!(
            "{:<12} {:>16.2} {:>16.1}",
            format!("{}KB", k / 1024),
            o.goodput_gbps,
            o.avg_queue_kb
        );
    }
    let o = run(senders, flows, None, true);
    println!(
        "{:<12} {:>16.2} {:>16.1}   <- learned online",
        "ACC", o.goodput_gbps, o.avg_queue_kb
    );
    println!();
}

fn main() {
    println!("Reproducing the paper's Observation 1 (Fig. 1): the optimal static");
    println!("threshold depends on the workload; ACC adapts by itself.\n");
    sweep("Incast A", 8, 32);
    sweep("Incast B", 15, 8);
}
