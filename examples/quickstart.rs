//! Quickstart: build a small RDMA fabric, put ACC on the switch, fire an
//! incast at it, and watch ACC keep the queue short while static ECN lets it
//! balloon.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acc::core::static_ecn;
use acc::core::{controller, ActionSpace, StaticEcnPolicy};
use acc::netsim::ids::PRIO_RDMA;
use acc::netsim::prelude::*;
use acc::transport::{self, CcKind, FctCollector, StackConfig};
use acc::workloads::gen;

/// Run one 8:1 incast under a given control policy; return
/// (avg FCT us, p99 FCT us, time-avg queue KB at the hot port).
fn run(policy: &str) -> (f64, f64, f64) {
    // 9 hosts on one 25 Gbps switch, ACC control loop every 50 us.
    let topo = TopologySpec::single_switch(9, 25_000_000_000, SimTime::from_ns(500)).build();
    let cfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, cfg);

    // Host transports (DCQCN on the lossless RDMA class).
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);

    // The control policy under test.
    match policy {
        "ACC" => {
            let mut acc_cfg = controller::AccConfig::default();
            acc_cfg.ddqn.min_replay = 32;
            controller::install_acc(&mut sim, &acc_cfg, &ActionSpace::templates());
        }
        "SECN1" => static_ecn::install_static(&mut sim, StaticEcnPolicy::Secn1),
        "SECN2" => static_ecn::install_static(&mut sim, StaticEcnPolicy::Secn2),
        other => panic!("unknown policy {other}"),
    }

    // Repeated 8:1 incast waves of 32 x 500 KB flows.
    let receiver = hosts[8];
    for wave in 0..20 {
        let arrivals = gen::incast_wave(
            &hosts[..8],
            receiver,
            4,
            500_000,
            CcKind::Dcqcn,
            SimTime::from_ms(wave * 6),
        );
        gen::apply_arrivals(&mut sim, &arrivals);
    }
    let horizon = SimTime::from_ms(130);
    sim.run_until(horizon);

    // Collect results: FCTs plus the hot egress queue's time average.
    let stats = fct.borrow().stats(|_| true);
    let sw = sim.core().topo.switches()[0];
    let t = sim.core_mut().synced_queue_telem(sw, PortId(8), PRIO_RDMA);
    let avg_q_kb = t.qlen_integral_byte_ps as f64 / horizon.as_ps() as f64 / 1024.0;
    (stats.avg_us, stats.p99_us, avg_q_kb)
}

fn main() {
    println!("ACC quickstart: 8:1 incast, 32 flows x 500KB per wave, 25G fabric\n");
    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "policy", "avg FCT(us)", "p99 FCT(us)", "avg queue(KB)"
    );
    for policy in ["SECN1", "SECN2", "ACC"] {
        let (avg, p99, q) = run(policy);
        println!("{policy:<8} {avg:>12.1} {p99:>12.1} {q:>14.1}");
    }
    println!(
        "\nACC learns online here (no pre-training); see `acc-bench` for the\n\
         full paper reproduction with offline pre-training."
    );
}
