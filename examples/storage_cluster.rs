//! A distributed SSD-storage cluster on a leaf-spine fabric (§5.3.1):
//! 18 compute nodes issue reads/writes against 6 storage nodes under the
//! Table-1 OLTP profile; compare IOPS with the vendor static ECN setting vs
//! ACC tuning the switches.
//!
//! Run with:
//! ```sh
//! cargo run --release --example storage_cluster
//! ```

use acc::core::static_ecn::install_static;
use acc::core::{controller, ActionSpace, StaticEcnPolicy};
use acc::netsim::prelude::*;
use acc::transport::{self, FctCollector, StackConfig};
use acc::workloads::gen::apply_arrivals;
use acc::workloads::{StorageCluster, StorageConfig, StorageProfile};
use std::cell::RefCell;
use std::rc::Rc;

fn run(use_acc: bool, io_depth: usize) -> (f64, f64) {
    // 24 servers, two-tier Clos (the paper's testbed scale).
    let topo = TopologySpec::paper_testbed().build();
    let cfg = SimConfig::default().with_control_interval(SimTime::from_us(50));
    let mut sim = Simulator::new(topo, cfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);

    if use_acc {
        let mut acc_cfg = controller::AccConfig::default();
        acc_cfg.ddqn.min_replay = 32;
        controller::install_acc(&mut sim, &acc_cfg, &ActionSpace::templates());
    } else {
        install_static(&mut sim, StaticEcnPolicy::Vendor);
    }

    let storage_cfg = StorageConfig {
        profile: StorageProfile::oltp(),
        io_depth,
        ..Default::default()
    };
    let cluster = Rc::new(RefCell::new(StorageCluster::new(&hosts, storage_cfg)));
    transport::set_app_hook(&mut sim, cluster.clone());
    let init = cluster.borrow_mut().initial_arrivals(SimTime::ZERO);
    apply_arrivals(&mut sim, &init);

    let horizon = SimTime::from_ms(80);
    sim.run_until(horizon);
    let c = cluster.borrow();
    // Skip the first 20 ms as warm-up.
    (c.iops(SimTime::from_ms(20), horizon), c.mean_latency_us())
}

fn main() {
    println!("Distributed storage (OLTP profile) on the 24-server Clos testbed\n");
    println!(
        "{:<10} {:<10} {:>12} {:>16}",
        "policy", "io_depth", "IOPS", "mean IO lat(us)"
    );
    for &depth in &[8usize, 32, 128] {
        let (vendor_iops, vendor_lat) = run(false, depth);
        let (acc_iops, acc_lat) = run(true, depth);
        println!(
            "{:<10} {:<10} {:>12.0} {:>16.1}",
            "Vendor", depth, vendor_iops, vendor_lat
        );
        println!(
            "{:<10} {:<10} {:>12.0} {:>16.1}   ({:+.1}% IOPS)",
            "ACC",
            depth,
            acc_iops,
            acc_lat,
            (acc_iops / vendor_iops - 1.0) * 100.0
        );
    }
}
