//! RDMA/TCP coexistence (§5.2, Fig. 8): the switch allocates bandwidth
//! 70:30 between the RDMA and TCP classes with DWRR, but TCP's slower
//! control loop and drop-tail greed steal RDMA's share under static ECN.
//! ACC restores the configured split by keeping the RDMA class marked just
//! enough to stay at its allocation without building queue.
//!
//! Run with:
//! ```sh
//! cargo run --release --example rdma_tcp_fairness
//! ```

use acc::core::static_ecn::install_static;
use acc::core::{controller, ActionSpace, StaticEcnPolicy};
use acc::netsim::prelude::*;
use acc::transport::{self, CcKind, FctCollector, Message, StackConfig};

/// Returns (rdma_share, tcp_share) of delivered bytes at the receiver.
fn run(n_senders: usize, use_acc: bool) -> (f64, f64) {
    // 8 hosts, 100G links, single switch; DWRR 70% RDMA / 30% TCP.
    let mut cfg = SimConfig::default();
    cfg.port = PortConfig::default().with_tcp_rdma_split(30, 70);
    cfg.control_interval = Some(SimTime::from_us(50));
    let topo = TopologySpec::single_switch(8, 100_000_000_000, SimTime::from_ns(500)).build();
    let mut sim = Simulator::new(topo, cfg);
    let fct = FctCollector::new_shared();
    let hosts = transport::install_stacks(&mut sim, StackConfig::default(), &fct);

    if use_acc {
        let mut acc_cfg = controller::AccConfig::default();
        acc_cfg.ddqn.min_replay = 32;
        controller::install_acc(&mut sim, &acc_cfg, &ActionSpace::templates());
    } else {
        install_static(&mut sim, StaticEcnPolicy::Secn1);
    }

    // Each sender pushes both an RDMA and a TCP elephant at the receiver.
    let receiver = hosts[7];
    for &h in hosts.iter().take(n_senders) {
        transport::schedule_message(
            &mut sim,
            h,
            SimTime::ZERO,
            Message::new(receiver, 200_000_000, CcKind::Dcqcn),
        );
        transport::schedule_message(
            &mut sim,
            h,
            SimTime::ZERO,
            Message::new(receiver, 200_000_000, CcKind::Reno),
        );
    }
    let horizon = SimTime::from_ms(30);
    sim.run_until(horizon);

    // Delivered bytes per class at the receiver's access port.
    let sw = sim.core().topo.switches()[0];
    let rx_port = PortId(7);
    let rdma = sim
        .core()
        .queue_telem(sw, rx_port, acc::netsim::ids::PRIO_RDMA)
        .tx_bytes;
    let tcp = sim
        .core()
        .queue_telem(sw, rx_port, acc::netsim::ids::PRIO_TCP)
        .tx_bytes;
    let total = (rdma + tcp) as f64;
    (rdma as f64 / total, tcp as f64 / total)
}

fn main() {
    println!("RDMA/TCP weighted fair sharing (DWRR 70/30) on a 100G switch\n");
    println!(
        "{:<10} {:<8} {:>12} {:>12}",
        "policy", "incast", "RDMA share", "TCP share"
    );
    for &(n, label) in &[(2usize, "2:1"), (7usize, "7:1")] {
        let (r_static, t_static) = run(n, false);
        let (r_acc, t_acc) = run(n, true);
        println!(
            "{:<10} {:<8} {:>11.1}% {:>11.1}%",
            "SECN",
            label,
            r_static * 100.0,
            t_static * 100.0
        );
        println!(
            "{:<10} {:<8} {:>11.1}% {:>11.1}%   (target 70/30)",
            "ACC",
            label,
            r_acc * 100.0,
            t_acc * 100.0
        );
    }
}
